//! CRAM — Clustering with Resource Awareness and Minimization
//! (paper §IV-C).
//!
//! CRAM repeatedly clusters the pair of subscriptions with the highest
//! non-zero closeness, re-running the BIN PACKING allocation test after
//! every clustering step; failed clusterings are undone and
//! blacklisted, and the best successful allocation (fewest brokers,
//! most-clustered on ties) is returned when no positive-closeness pair
//! remains.
//!
//! All three of the paper's optimizations are implemented and can be
//! toggled for the ablation experiments:
//!
//! 1. **GIF grouping** — subscriptions with equal bit vectors share a
//!    Group of Identical Filters; clustering operates on GIF pairs.
//! 2. **Search pruning** — each GIF tracks only its closest partner,
//!    found by a breadth-first poset walk that prunes empty-relationship
//!    subtrees and stops descending once closeness starts to decrease
//!    (not applicable to the XOR metric, which cannot distinguish empty
//!    relationships — the reason it is ≥75% slower).
//! 3. **One-to-many clustering** — before pairwise-merging two
//!    intersecting GIFs, try clustering each GIF with a greedy
//!    set-cover selection of its covered GIFs (the CGS).
//!
//! The closest-pair search — CRAM's hot loop — runs on the parallel
//! closeness engine ([`crate::engine`]): stale GIFs are sharded across
//! a scoped worker pool ([`CramBuilder::threads`]) that scans a frozen
//! snapshot of the pool and pair-closeness cache, so the allocation
//! (and every stat) is bit-identical to the sequential run for any
//! thread count. Pair closenesses are memoized in a
//! [`crate::engine::PairCache`] keyed by GIF-key pairs; entries are
//! invalidated only for pairs touching a merged-away GIF — blacklisted
//! pairs keep their entries because the underlying profiles never
//! changed.
//!
//! Two further engine knobs shape *how* (never *what*) the answer is
//! computed:
//!
//! * [`CramBuilder::layout`] picks the profile storage
//!   ([`Layout::Arena`], the default, packs every per-publisher bit
//!   window into one contiguous [`greenps_profile::BitsetArena`] and
//!   runs the allocation tests on a persistent incremental packer;
//!   [`Layout::PerProfile`] is the byte-exact legacy reference path);
//! * [`CramBuilder::tile`] groups GIF keys into fixed-width tiles whose
//!   OR-summary profiles let the poset scan reject a whole tile of
//!   candidates with a single intersect pass.
//!
//! Both knobs preserve the allocation and [`CramStats`] bit-for-bit,
//! except that tiling (by design) lowers `closeness_computations`.
//!
//! Entry point: [`CramBuilder`].

use crate::capacity::{pack_order, FastPacker, RefPacker};
use crate::engine::{shard_map_scratch, CacheConfig, PairCache};
use crate::model::{AllocError, Allocation, AllocationInput, BrokerLoad, Unit};
use crate::pipeline::CancelToken;
use crate::sorting::{bin_packing_units, units_from_input};
use greenps_profile::{
    ArenaKernel, Closeness, ClosenessKernel, ClosenessMetric, PerProfileKernel, Poset,
    PublisherTable, Relation, ShiftingBitVector, SubscriptionProfile, DEFAULT_CAPACITY,
};
use greenps_pubsub::ids::{AdvId, BrokerId};
use greenps_telemetry::{EventSink, Histogram, Registry, Span};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Key of a GIF inside the CRAM pool.
pub(crate) type GifKey = u64;
/// Key of a unit inside the CRAM pool.
type UnitKey = u64;

/// How the closeness engine stores GIF profiles.
///
/// The choice never changes the allocation or any [`CramStats`] field —
/// both layouts route every metric evaluation through the same
/// word-level popcount — it only changes memory behaviour and speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One heap-allocated profile clone per GIF — the legacy layout,
    /// kept as the bit-exact reference the arena is proven against.
    /// Allocation tests re-sort and re-pack from scratch.
    PerProfile,
    /// Every per-publisher bit window packed into one contiguous
    /// fixed-stride [`greenps_profile::BitsetArena`], so a pair
    /// evaluation is a streaming popcount over adjacent rows with zero
    /// allocations. Allocation tests run on a persistent packer over an
    /// incrementally-maintained unit order.
    Arena {
        /// Row stride in bits. `0` (the default) sizes the stride
        /// automatically from the widest window in the initial pool;
        /// windows wider than the stride fall back to a side store, so
        /// any value is correct.
        stride: usize,
    },
}

impl Default for Layout {
    fn default() -> Self {
        Layout::Arena { stride: 0 }
    }
}

/// Default tile width (GIF keys per tile) for whole-tile pruning.
pub const DEFAULT_TILE: usize = 64;

/// CRAM configuration.
#[derive(Debug, Clone, Copy)]
pub struct CramConfig {
    /// Closeness metric (paper evaluates all four).
    pub metric: ClosenessMetric,
    /// Optimization 3: one-to-many CGS clustering.
    pub one_to_many: bool,
    /// Optimization 2: poset search pruning (when the metric allows).
    pub poset_pruning: bool,
    /// Worker threads for the closest-pair search (1 = sequential).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Profile storage layout for the closeness engine.
    pub layout: Layout,
    /// Tile width for whole-tile candidate rejection (`0` disables).
    pub tile: usize,
    /// Pair-closeness cache configuration.
    pub cache: CacheConfig,
}

impl CramConfig {
    /// The paper's default configuration for a metric: all optimizations
    /// on, sequential search, arena layout with tiled pruning.
    pub fn with_metric(metric: ClosenessMetric) -> Self {
        Self {
            metric,
            one_to_many: true,
            poset_pruning: true,
            threads: 1,
            layout: Layout::default(),
            tile: DEFAULT_TILE,
            cache: CacheConfig::default(),
        }
    }
}

impl Default for CramConfig {
    fn default() -> Self {
        Self::with_metric(ClosenessMetric::Ios)
    }
}

/// Counters reported alongside a CRAM allocation (experiment E7/E8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CramStats {
    /// Total subscriptions in the pool.
    pub subscriptions: usize,
    /// GIFs after grouping equal profiles (optimization 1; the paper
    /// reports up to 61% reduction at 8,000 subscriptions).
    pub initial_gifs: usize,
    /// Main-loop iterations executed.
    pub iterations: usize,
    /// Successful clustering merges.
    pub merges: usize,
    /// Merges undone after a failed allocation test.
    pub failed_merges: usize,
    /// One-to-many (CGS) merges among the successful ones.
    pub one_to_many_merges: usize,
    /// Closeness computations performed (the paper's ~5,000,000 →
    /// ~280,000 pruning headline).
    pub closeness_computations: u64,
    /// Profile-relationship computations performed by the poset.
    pub poset_relation_ops: u64,
    /// Units (clusters) remaining when the algorithm terminated — the
    /// cluster count PAIRWISE-K borrows.
    pub final_units: usize,
}

#[derive(Debug, Clone)]
struct Gif {
    profile: SubscriptionProfile,
    /// Unit keys, kept sorted by (out_bandwidth, first sub id) ascending
    /// — "lightest" first.
    units: Vec<UnitKey>,
}

/// Lazily-maintained index of GIF-key tiles for whole-tile rejection.
///
/// GIF keys are grouped into fixed-width tiles (`key / tile`); each
/// tile keeps the OR-union of its members' profiles as an aggregate
/// summary. During a poset scan, a tile whose summary is disjoint from
/// the scanning GIF's profile can be rejected with one intersect pass:
/// the summary covers every member, so each member's closeness is
/// provably zero under the empty-pruning metrics — exactly the subtree
/// prune the per-candidate `c == 0` branch would take, minus the
/// per-candidate evaluations.
///
/// Membership changes only mark a bucket dirty; summaries are rebuilt
/// lazily before each scan round. When rebuilding, every per-publisher
/// window is widened to the members' combined extent so the union can
/// never truncate — truncation would break the `summary ⊇ member`
/// invariant the rejection's soundness rests on.
struct TileIndex {
    /// Tile width in GIF keys; `0` disables the index entirely.
    tile: usize,
    buckets: BTreeMap<u64, TileBucket>,
    /// Buckets whose summary is stale (membership changed).
    dirty: BTreeSet<u64>,
}

#[derive(Default)]
struct TileBucket {
    members: BTreeSet<GifKey>,
    summary: SubscriptionProfile,
}

impl TileIndex {
    fn new(tile: usize) -> Self {
        Self {
            tile,
            buckets: BTreeMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    fn enabled(&self) -> bool {
        self.tile > 0
    }

    fn bucket_of(&self, g: GifKey) -> u64 {
        g / self.tile.max(1) as u64
    }

    fn on_insert(&mut self, g: GifKey) {
        if !self.enabled() {
            return;
        }
        let b = self.bucket_of(g);
        self.buckets.entry(b).or_default().members.insert(g);
        self.dirty.insert(b);
    }

    fn on_remove(&mut self, g: GifKey) {
        if !self.enabled() {
            return;
        }
        let b = self.bucket_of(g);
        if let Some(bucket) = self.buckets.get_mut(&b) {
            bucket.members.remove(&g);
            if bucket.members.is_empty() {
                self.buckets.remove(&b);
                self.dirty.remove(&b);
            } else {
                self.dirty.insert(b);
            }
        }
    }

    /// The bucket's aggregate summary, valid only after [`Self::rebuild`].
    fn summary(&self, b: u64) -> Option<&SubscriptionProfile> {
        self.buckets.get(&b).map(|bucket| &bucket.summary)
    }

    /// Recomputes the summaries of all dirty buckets.
    fn rebuild(&mut self, gifs: &BTreeMap<GifKey, Gif>) {
        while let Some(b) = self.dirty.pop_first() {
            if let Some(bucket) = self.buckets.get_mut(&b) {
                bucket.summary = summarize(&bucket.members, gifs);
            }
        }
    }
}

/// OR-union of the members' profiles, with each per-publisher window
/// widened to the members' combined extent so no member bit is ever
/// truncated away (the `summary ⊇ member` invariant).
fn summarize(members: &BTreeSet<GifKey>, gifs: &BTreeMap<GifKey, Gif>) -> SubscriptionProfile {
    let mut extents: BTreeMap<AdvId, (u64, u64)> = BTreeMap::new();
    for g in members {
        let Some(gif) = gifs.get(g) else { continue };
        for (adv, v) in gif.profile.iter() {
            let e = extents.entry(adv).or_insert((v.first_id(), v.window_end()));
            e.0 = e.0.min(v.first_id());
            e.1 = e.1.max(v.window_end());
        }
    }
    let mut wide: BTreeMap<AdvId, ShiftingBitVector> = extents
        .into_iter()
        .map(|(adv, (lo, hi))| {
            let bits = usize::try_from(hi.saturating_sub(lo)).unwrap_or(usize::MAX);
            (adv, ShiftingBitVector::starting_at(bits.max(1), lo))
        })
        .collect();
    for g in members {
        let Some(gif) = gifs.get(g) else { continue };
        for (adv, v) in gif.profile.iter() {
            if let Some(w) = wide.get_mut(&adv) {
                w.or_assign(v);
            }
        }
    }
    let mut summary = SubscriptionProfile::new();
    for (adv, v) in wide {
        summary.insert_vector(adv, v);
    }
    summary
}

struct Pool {
    units: BTreeMap<UnitKey, Arc<Unit>>,
    gifs: BTreeMap<GifKey, Gif>,
    /// Profile → GIF lookup. A `BTreeMap` (not `HashMap`) so that no
    /// iteration over this table — present or future — can depend on
    /// hash order; CRAM's determinism contract forbids hash-ordered
    /// decisions anywhere in the merge loop.
    by_profile: BTreeMap<SubscriptionProfile, GifKey>,
    poset: Poset<GifKey>,
    /// Batch cardinality provider over the live GIF profiles — the
    /// layout-specific half of every metric evaluation.
    kernel: Box<dyn ClosenessKernel>,
    /// Tile summaries for whole-tile rejection (inert when `tile` is 0).
    tiles: TileIndex,
    next_unit: UnitKey,
    next_gif: GifKey,
}

impl Pool {
    fn build(
        units: Vec<Unit>,
        layout: Layout,
        tile: usize,
        cancel: &CancelToken,
    ) -> Result<Self, AllocError> {
        let kernel: Box<dyn ClosenessKernel> = match layout {
            Layout::PerProfile => Box::new(PerProfileKernel::new()),
            Layout::Arena { stride } => {
                let stride = if stride == 0 {
                    units
                        .iter()
                        .flat_map(|u| u.profile.iter())
                        .map(|(_, v)| v.capacity())
                        .max()
                        .unwrap_or(DEFAULT_CAPACITY)
                } else {
                    stride
                };
                Box::new(ArenaKernel::new(stride))
            }
        };
        let mut pool = Pool {
            units: BTreeMap::new(),
            gifs: BTreeMap::new(),
            by_profile: BTreeMap::new(),
            poset: Poset::new(),
            kernel,
            tiles: TileIndex::new(tile),
            next_unit: 0,
            next_gif: 0,
        };
        for u in units {
            if cancel.is_cancelled_hot() {
                return Err(AllocError::Cancelled);
            }
            pool.add_unit(u);
        }
        Ok(pool)
    }

    fn add_unit(&mut self, unit: Unit) -> (UnitKey, GifKey) {
        let uk = self.next_unit;
        self.next_unit += 1;
        let gk = match self.by_profile.get(&unit.profile) {
            Some(&gk) => gk,
            None => {
                let gk = self.next_gif;
                self.next_gif += 1;
                self.by_profile.insert(unit.profile.clone(), gk);
                self.gifs.insert(
                    gk,
                    Gif {
                        profile: unit.profile.clone(),
                        units: Vec::new(),
                    },
                );
                self.poset.insert(gk, unit.profile.clone());
                self.kernel.insert(gk, &unit.profile);
                self.tiles.on_insert(gk);
                gk
            }
        };
        let gif = self
            .gifs
            .get_mut(&gk)
            .expect("gif inserted above or found via by_profile");
        let pos = gif
            .units
            .binary_search_by(|k| {
                let u = &self.units[k];
                u.out_bandwidth
                    .total_cmp(&unit.out_bandwidth)
                    .then(u.subs.first().cmp(&unit.subs.first()))
            })
            .unwrap_or_else(|e| e);
        gif.units.insert(pos, uk);
        self.units.insert(uk, Arc::new(unit));
        (uk, gk)
    }

    /// Removes a unit; deletes its GIF (and poset node, kernel entry,
    /// tile membership) when emptied. Returns the unit and whether the
    /// GIF was deleted.
    fn remove_unit(&mut self, gk: GifKey, uk: UnitKey) -> (Arc<Unit>, bool) {
        let unit = self.units.remove(&uk).expect("unknown unit");
        let gif = self.gifs.get_mut(&gk).expect("unknown gif");
        gif.units.retain(|&k| k != uk);
        if gif.units.is_empty() {
            let gif = self.gifs.remove(&gk).expect("gif fetched above");
            self.by_profile.remove(&gif.profile);
            self.poset.remove(gk);
            self.kernel.remove(gk);
            self.tiles.on_remove(gk);
            (unit, true)
        } else {
            (unit, false)
        }
    }

    /// The lightest (smallest output bandwidth) unit of a GIF.
    fn lightest(&self, gk: GifKey) -> UnitKey {
        self.gifs[&gk].units[0]
    }
}

/// The closeness measure a [`CramBuilder`] clusters with: one of the
/// paper's metrics, or a borrowed user-supplied measure.
///
/// Built-in metrics evaluate through the pool's [`ClosenessKernel`]
/// (one batch popcount pass + scalar arithmetic); custom measures see
/// whole profiles, as their trait contract promises.
#[derive(Clone, Copy)]
enum MeasureRef<'a> {
    Metric(ClosenessMetric),
    Custom(&'a dyn Closeness),
}

/// Builder-style entry point for CRAM — the one way to run it.
///
/// Covers everything the former `cram` / `cram_units` /
/// `cram_units_custom` trio did: a paper metric ([`CramBuilder::new`])
/// or a custom [`Closeness`] measure ([`CramBuilder::custom`]), the
/// O2/O3 optimization toggles, and the parallel closest-pair search
/// ([`CramBuilder::threads`]).
///
/// ```
/// use greenps_core::cram::CramBuilder;
/// use greenps_core::model::AllocationInput;
/// use greenps_profile::ClosenessMetric;
///
/// let input = AllocationInput::new();
/// let (alloc, stats) = CramBuilder::new(ClosenessMetric::Ios)
///     .threads(4)
///     .run(&input)?;
/// assert_eq!(alloc.broker_count(), 0);
/// assert_eq!(stats.initial_gifs, 0);
/// # Ok::<(), greenps_core::model::AllocError>(())
/// ```
pub struct CramBuilder<'a> {
    measure: MeasureRef<'a>,
    one_to_many: bool,
    poset_pruning: bool,
    threads: usize,
    layout: Layout,
    tile: usize,
    cache: CacheConfig,
    telemetry: Registry,
    cancel: CancelToken,
}

impl<'a> CramBuilder<'a> {
    /// CRAM with a paper metric, all optimizations on, sequential
    /// search, arena layout with tiled pruning.
    pub fn new(metric: ClosenessMetric) -> Self {
        CramBuilder {
            measure: MeasureRef::Metric(metric),
            one_to_many: true,
            poset_pruning: true,
            threads: 1,
            layout: Layout::default(),
            tile: DEFAULT_TILE,
            cache: CacheConfig::default(),
            telemetry: Registry::disabled(),
            cancel: CancelToken::never(),
        }
    }

    /// CRAM with a user-supplied [`Closeness`] measure — the plug-in
    /// point for custom clustering heuristics.
    pub fn custom(measure: &'a dyn Closeness) -> Self {
        CramBuilder {
            measure: MeasureRef::Custom(measure),
            one_to_many: true,
            poset_pruning: true,
            threads: 1,
            layout: Layout::default(),
            tile: DEFAULT_TILE,
            cache: CacheConfig::default(),
            telemetry: Registry::disabled(),
            cancel: CancelToken::never(),
        }
    }

    /// Builder from a [`CramConfig`] (the form the ablation experiments
    /// and [`crate::overlay::AllocatorKind::Cram`] carry around).
    pub fn from_config(config: CramConfig) -> Self {
        CramBuilder {
            measure: MeasureRef::Metric(config.metric),
            one_to_many: config.one_to_many,
            poset_pruning: config.poset_pruning,
            threads: config.threads,
            layout: config.layout,
            tile: config.tile,
            cache: config.cache,
            telemetry: Registry::disabled(),
            cancel: CancelToken::never(),
        }
    }

    /// Selects the profile storage layout. [`Layout::Arena`] (the
    /// default) runs the contiguous-popcount kernel and the persistent
    /// fast packer; [`Layout::PerProfile`] runs the legacy reference
    /// path. The allocation and stats are bit-identical either way.
    #[must_use]
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Tile width for whole-tile candidate rejection during the poset
    /// scan (`0` disables tiling). Only `closeness_computations` can
    /// change — the allocation and every other stat stay bit-identical,
    /// because a rejected tile is exactly a set of candidates whose
    /// closeness is provably zero.
    #[must_use]
    pub fn tile(mut self, tile: usize) -> Self {
        self.tile = tile;
        self
    }

    /// Pair-closeness cache configuration (entry budget + invalidation
    /// policy).
    #[must_use]
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Threads a cancellation token into the run: the merge loop, the
    /// baseline packing, and the pool build all poll it and stop with
    /// [`AllocError::Cancelled`]. The default is a never-cancelled
    /// token, so untoken'd runs behave exactly as before.
    #[must_use]
    pub fn cancel_token(mut self, cancel: &CancelToken) -> Self {
        self.cancel = cancel.clone();
        self
    }

    /// Reports into `registry`: the `cram.run` span, per-scan timings,
    /// GIF-merge/blacklist trace events, and — after the run — the
    /// closeness-computation and pair-cache counters. Observation only:
    /// the allocation and [`CramStats`] are bit-identical with any
    /// registry, including [`Registry::disabled`] (the default).
    #[must_use]
    pub fn telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = registry.clone();
        self
    }

    /// Toggles optimization 3 (one-to-many CGS clustering).
    #[must_use]
    pub fn one_to_many(mut self, on: bool) -> Self {
        self.one_to_many = on;
        self
    }

    /// Toggles optimization 2 (poset search pruning; only effective
    /// when the measure supports empty-relationship pruning).
    #[must_use]
    pub fn poset_pruning(mut self, on: bool) -> Self {
        self.poset_pruning = on;
        self
    }

    /// Worker threads for the closest-pair search. The allocation and
    /// stats are bit-identical for every value; `1` (the default) runs
    /// fully sequentially.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Runs CRAM over an allocation input.
    ///
    /// # Errors
    /// Fails when even the unclustered BIN PACKING allocation is
    /// infeasible, mirroring the paper's initialization step.
    pub fn run(&self, input: &AllocationInput) -> Result<(Allocation, CramStats), AllocError> {
        self.run_units(input, units_from_input(input))
    }

    /// Runs CRAM over prebuilt units (used recursively by Phase 3).
    ///
    /// # Errors
    /// Fails when the initial unclustered allocation is infeasible.
    pub fn run_units(
        &self,
        input: &AllocationInput,
        units: Vec<Unit>,
    ) -> Result<(Allocation, CramStats), AllocError> {
        let span = Span::enter(&self.telemetry, "cram.run");
        let mut stats = CramStats {
            subscriptions: units.iter().map(Unit::sub_count).sum(),
            ..CramStats::default()
        };

        // Initialization: allocate without clustering; abort on failure.
        let baseline = bin_packing_units(
            &input.brokers,
            &input.publishers,
            units.clone(),
            &self.cancel,
        )?;

        let pool = Pool::build(units, self.layout, self.tile, &self.cancel)?;
        stats.initial_gifs = pool.gifs.len();
        // The arena layout carries a persistent packer over an
        // incrementally-maintained pack-order unit list; the
        // per-profile layout re-packs from scratch per test — the
        // byte-exact reference path the fast path is proven against.
        let pack = match self.layout {
            Layout::PerProfile => PackPath::Reference,
            Layout::Arena { .. } => {
                let mut order: Vec<PackEntry> = pool
                    .units
                    .iter()
                    .map(|(&key, u)| PackEntry {
                        key,
                        unit: Arc::clone(u),
                    })
                    .collect();
                order.sort_by(|a, b| pack_order(&a.unit, &b.unit));
                PackPath::Fast {
                    packer: FastPacker::new(&input.brokers, &input.publishers),
                    order,
                }
            }
        };
        // The fast path keeps only the packing *recipe* of the best
        // allocation and materializes once after the run; seeding it
        // from the baseline keeps the fallback guarantee intact.
        let best = match &pack {
            PackPath::Reference => BestAlloc::Full(baseline),
            PackPath::Fast { .. } => BestAlloc::Recipe {
                brokers: baseline.broker_count(),
                picks: baseline
                    .loads
                    .into_iter()
                    .map(|l| (l.broker, l.units.into_iter().map(Arc::new).collect()))
                    .collect(),
            },
        };
        let mut engine = Engine {
            pool,
            measure: self.measure,
            one_to_many: self.one_to_many,
            poset_pruning: self.poset_pruning,
            threads: self.threads,
            publishers: &input.publishers,
            brokers: &input.brokers,
            partners: BTreeMap::new(),
            stale: BTreeSet::new(),
            blacklist: BTreeSet::new(),
            cache: PairCache::with_config(self.cache),
            stats,
            best,
            pack,
            tile_checks: 0,
            tile_pruned: 0,
            scan_timer: self.telemetry.histogram("cram.scan_us"),
            scan_scratch: ScanScratch::default(),
            removed_buf: Vec::new(),
            cgs_scratch: CgsScratch::default(),
            events: self.telemetry.ring("cram"),
            cancel: self.cancel.clone(),
        };
        engine.stale.extend(engine.pool.gifs.keys().copied());
        if !engine.run() {
            // Cancelled mid-merge: no partial allocation escapes.
            span.finish();
            return Err(AllocError::Cancelled);
        }
        engine.stats.poset_relation_ops = engine.pool.poset.relation_ops();
        engine.stats.final_units = engine.pool.units.len();
        self.report(&engine);
        span.finish();
        let stats = engine.stats;
        let best = match engine.best {
            BestAlloc::Full(a) => a,
            BestAlloc::Recipe { picks, .. } => materialize_recipe(picks, &input.publishers),
        };
        Ok((best, stats))
    }

    /// Publishes the run's counters and gauges. Pure observation of
    /// already-final values, after the allocation is decided.
    fn report(&self, engine: &Engine<'_>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        let stats = &engine.stats;
        t.counter("cram.closeness_computations")
            .add(stats.closeness_computations);
        t.counter("cram.iterations").add(stats.iterations as u64);
        t.counter("cram.merges").add(stats.merges as u64);
        t.counter("cram.failed_merges")
            .add(stats.failed_merges as u64);
        t.counter("cram.one_to_many_merges")
            .add(stats.one_to_many_merges as u64);
        t.gauge("cram.initial_gifs").set(stats.initial_gifs as u64);
        t.gauge("cram.final_units").set(stats.final_units as u64);
        t.counter("cram.tile.checks").add(engine.tile_checks);
        t.counter("cram.tile.pruned").add(engine.tile_pruned);
        // Pruning effectiveness: share of candidate evaluations the
        // tile summaries eliminated.
        let tile_denom = engine.tile_pruned + stats.closeness_computations;
        let tile_pct = if tile_denom == 0 {
            0.0
        } else {
            engine.tile_pruned as f64 / tile_denom as f64 * 100.0
        };
        t.gauge("cram.tile.pruned_pct").set_f64(tile_pct);
        let cache = engine.cache.stats();
        t.counter("core.pair_cache.hits").add(cache.hits);
        t.counter("core.pair_cache.misses").add(cache.misses);
        t.gauge("core.pair_cache.hit_rate_pct")
            .set_f64(cache.hit_rate() * 100.0);
    }
}

struct Engine<'a> {
    pool: Pool,
    measure: MeasureRef<'a>,
    one_to_many: bool,
    poset_pruning: bool,
    /// Worker threads for the sharded partner refresh.
    threads: usize,
    publishers: &'a PublisherTable,
    brokers: &'a [crate::model::BrokerSpec],
    /// Cached closest partner per GIF.
    partners: BTreeMap<GifKey, Option<(GifKey, f64)>>,
    /// GIFs whose cached partner must be recomputed.
    stale: BTreeSet<GifKey>,
    blacklist: BTreeSet<(GifKey, GifKey)>,
    /// Memoized pair closenesses; invalidated only for merged-away
    /// GIFs (blacklisting leaves profiles — and hence entries — valid).
    cache: PairCache<GifKey>,
    stats: CramStats,
    best: BestAlloc,
    /// How the allocation tests pack (layout-selected).
    pack: PackPath,
    /// Whole-tile summary checks performed (telemetry only).
    tile_checks: u64,
    /// Frontier candidates rejected tile-at-a-time (telemetry only).
    tile_pruned: u64,
    /// Telemetry: per-scan wall times (µs). Atomic and lock-free, so
    /// shard workers record into it concurrently without affecting the
    /// scan results.
    scan_timer: Histogram,
    /// Telemetry: merge/blacklist trace events.
    events: EventSink,
    /// Reusable scan buffers for [`Engine::refresh_one`].
    scan_scratch: ScanScratch,
    /// Reusable sorted removed-unit buffer for the feasibility tests.
    removed_buf: Vec<UnitKey>,
    /// Reusable descent/cover/removal buffers for [`Engine::attempt_cgs`].
    cgs_scratch: CgsScratch,
    /// Polled once per merge iteration; a tripped token stops the run.
    cancel: CancelToken,
}

fn pair_key(a: GifKey, b: GifKey) -> (GifKey, GifKey) {
    (a.min(b), a.max(b))
}

/// One entry of the fast path's persistently-sorted unit list.
struct PackEntry {
    key: UnitKey,
    unit: Arc<Unit>,
}

/// How [`Engine::test_and_record`] runs the allocation test.
enum PackPath {
    /// Collect, re-sort, and re-pack from scratch on every test — the
    /// original implementation, kept byte-for-byte as the reference
    /// path ([`Layout::PerProfile`]).
    Reference,
    /// A persistent [`FastPacker`] (epoch-reset broker/union state)
    /// fed from an incrementally-maintained [`pack_order`]-sorted unit
    /// list, so a test performs no sorting and no per-test allocations
    /// ([`Layout::Arena`]).
    Fast {
        packer: FastPacker,
        /// Live pool units sorted by [`pack_order`], maintained by
        /// [`Engine::commit`].
        order: Vec<PackEntry>,
    },
}

/// The best allocation seen so far. The reference path stores it fully
/// materialized after every improvement (the legacy behaviour); the
/// fast path stores only the packing *recipe* — which broker got which
/// units, in placement order — and materializes once when the run
/// ends. Replaying the recipe performs the same profile unions,
/// bandwidth sums, and load estimates in the same order as
/// [`RefPacker::into_allocation`], so the result is bit-identical.
enum BestAlloc {
    Full(Allocation),
    Recipe {
        brokers: usize,
        picks: Vec<(BrokerId, Vec<Arc<Unit>>)>,
    },
}

impl BestAlloc {
    fn broker_count(&self) -> usize {
        match self {
            BestAlloc::Full(a) => a.broker_count(),
            BestAlloc::Recipe { brokers, .. } => *brokers,
        }
    }
}

/// Materializes a fast-path packing recipe into a full [`Allocation`]:
/// per broker, replay `or_assign` over the picked units in placement
/// order, sum their bandwidths, and estimate the union load — the
/// exact fold [`RefPacker::into_allocation`] (and the baseline packer)
/// performs, so the `f64` results match bit-for-bit.
fn materialize_recipe(
    picks: Vec<(BrokerId, Vec<Arc<Unit>>)>,
    publishers: &PublisherTable,
) -> Allocation {
    let loads = picks
        .into_iter()
        .map(|(broker, picked)| {
            let mut union = SubscriptionProfile::new();
            let mut out_bw_used = 0.0;
            for u in &picked {
                union.or_assign(&u.profile);
                out_bw_used += u.out_bandwidth;
            }
            let input = union.estimate_load(publishers);
            BrokerLoad {
                broker,
                units: picked.iter().map(|u| (**u).clone()).collect(),
                union_profile: union,
                out_bw_used,
                in_rate: input.rate,
                in_bandwidth: input.bandwidth,
            }
        })
        .collect();
    Allocation { loads }
}

/// Streams the fast path's sorted unit list with `removed` keys
/// filtered out and one trial merged unit spliced in at its
/// [`pack_order`] position. Ties go to the survivors, matching the
/// reference path's stable sort over survivors chained with the merged
/// unit last (the order is strict across a live pool anyway — unit
/// subscription lists are disjoint and non-empty).
struct MergedOrder<'u, I: Iterator<Item = &'u Arc<Unit>>> {
    inner: std::iter::Peekable<I>,
    merged: Option<&'u Arc<Unit>>,
}

impl<'u, I: Iterator<Item = &'u Arc<Unit>>> Iterator for MergedOrder<'u, I> {
    type Item = &'u Arc<Unit>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.merged {
            Some(m) => match self.inner.peek() {
                Some(u) if pack_order(u, m) != std::cmp::Ordering::Greater => self.inner.next(),
                _ => self.merged.take(),
            },
            None => self.inner.next(),
        }
    }
}

/// Reusable working memory for [`scan_partner`]: the poset BFS frontier
/// and visited set plus the pair closenesses computed so far (cache
/// misses, merged into the shared cache after the shard joins). One
/// scratch lives per shard worker, so consecutive scans reuse the same
/// heap buffers instead of allocating per scan — the pair-evaluation
/// path stays allocation-free in steady state.
#[derive(Debug, Default)]
struct ScanScratch {
    frontier: Vec<(GifKey, f64)>,
    visited: BTreeSet<GifKey>,
    /// `(g, candidate, closeness)` triples computed by this shard's
    /// scans, in scan order.
    computed: Vec<(GifKey, GifKey, f64)>,
    /// Measure evaluations performed by this shard's scans.
    computations: u64,
    /// Per-scan memo of tile-summary disjointness, keyed by bucket —
    /// one summary intersect per touched tile per scan.
    tile_state: BTreeMap<u64, bool>,
    /// Whole-tile summary checks performed by this shard's scans.
    tile_checks: u64,
    /// Frontier candidates rejected tile-at-a-time.
    tile_pruned: u64,
}

/// Reusable working memory for [`Engine::attempt_cgs`]: the poset
/// descent (frontier + visited set), the descendant worklist, the
/// greedy cover selection, and the removal list handed to
/// [`Engine::commit`]. CGS attempts run once per intersecting pair, so
/// reusing these buffers keeps the pair-evaluation path free of
/// per-attempt allocations.
#[derive(Debug, Default)]
struct CgsScratch {
    /// Descendants of the parent GIF, consumed by the greedy cover.
    remaining: Vec<GifKey>,
    frontier: Vec<GifKey>,
    seen: BTreeSet<GifKey>,
    /// The selected cover, in selection order.
    cgs: Vec<GifKey>,
    /// `(gif, unit)` pairs removed by the committed merge.
    removals: Vec<(GifKey, UnitKey)>,
}

/// Finds the closest non-blacklisted partner of `g` against a frozen
/// snapshot of the pool and pair cache (optimization 2 when the
/// measure allows). A free function over shared references so
/// [`shard_map_scratch`] workers can run it concurrently; because every
/// worker sees the same snapshot — never another worker's fresh results
/// — the outcome is independent of sharding, which is what makes
/// parallel CRAM bit-identical to sequential.
///
/// Ties break to the lowest candidate key, matching the sequential
/// scan order over the `BTreeMap` pool. Computed closenesses and the
/// evaluation tally accumulate in `scratch` for the caller to merge.
#[allow(clippy::too_many_arguments)]
fn scan_partner(
    pool: &Pool,
    measure: MeasureRef<'_>,
    poset_pruning: bool,
    use_tiles: bool,
    blacklist: &BTreeSet<(GifKey, GifKey)>,
    cache: &PairCache<GifKey>,
    timer: &Histogram,
    scratch: &mut ScanScratch,
    g: GifKey,
) -> Option<(GifKey, f64)> {
    // The timer guard reads the clock only when telemetry is on, and it
    // cannot influence the outcome.
    let timer = timer.start_timer();
    let g_profile = &pool.gifs[&g].profile;
    let ScanScratch {
        frontier,
        visited,
        computed,
        computations,
        tile_state,
        tile_checks,
        tile_pruned,
    } = scratch;
    let mut eval = |cand: GifKey, profile: &SubscriptionProfile| -> f64 {
        if let Some(c) = cache.get(g, cand) {
            return c;
        }
        *computations += 1;
        // Built-in metrics: one batch popcount pass through the
        // layout's kernel (arena rows or per-profile clones — same
        // cardinalities by construction), then scalar arithmetic.
        let c = match measure {
            MeasureRef::Metric(m) => m.from_cardinalities(pool.kernel.pair_cardinalities(g, cand)),
            MeasureRef::Custom(m) => m.closeness(g_profile, profile),
        };
        computed.push((g, cand, c));
        c
    };
    let mut best: Option<(GifKey, f64)> = None;
    let mut consider = |cand: GifKey, c: f64| {
        if c <= 0.0 || blacklist.contains(&pair_key(g, cand)) {
            return;
        }
        if cand == g && pool.gifs[&g].units.len() < 2 {
            return;
        }
        match best {
            Some((bk, bc)) if bc > c || (bc == c && bk <= cand) => {}
            _ => best = Some((cand, c)),
        }
    };

    let prune = poset_pruning
        && match measure {
            MeasureRef::Metric(m) => m.supports_empty_pruning(),
            MeasureRef::Custom(m) => m.supports_empty_pruning(),
        };
    if prune {
        // BFS from the roots; prune empty subtrees and stop
        // descending once closeness decreases.
        frontier.clear();
        frontier.extend(pool.poset.roots().map(|r| (r, 0.0)));
        visited.clear();
        tile_state.clear();
        let mut i = 0;
        while i < frontier.len() {
            let (n, parent_c) = frontier[i];
            i += 1;
            if !visited.insert(n) {
                continue;
            }
            if use_tiles {
                let b = pool.tiles.bucket_of(n);
                let disjoint = match tile_state.get(&b) {
                    Some(&d) => d,
                    None => {
                        *tile_checks += 1;
                        let d = pool
                            .tiles
                            .summary(b)
                            .is_some_and(|s| g_profile.intersect_count(s) == 0);
                        tile_state.insert(b, d);
                        d
                    }
                };
                if disjoint {
                    // Whole-tile rejection: the summary covers every
                    // member of the tile, so a disjoint summary proves
                    // closeness 0 for this candidate — exactly the
                    // `c == 0.0` subtree prune below, minus the eval.
                    *tile_pruned += 1;
                    continue;
                }
            }
            let n_profile = pool.poset.profile(n).expect("poset node");
            let c = eval(n, n_profile);
            if c == 0.0 {
                continue; // empty relationship: prune subtree
            }
            consider(n, c);
            if c >= parent_c {
                frontier.extend(pool.poset.children(n).map(|ch| (ch, c)));
            }
        }
    } else {
        for (&cand, gif) in &pool.gifs {
            let c = eval(cand, &gif.profile);
            consider(cand, c);
        }
    }
    timer.stop();
    best
}

impl Engine<'_> {
    /// Runs the merge iteration to fixpoint. Returns `false` when the
    /// cancellation token tripped before convergence (one poll per
    /// merge iteration bounds the stop latency to a single
    /// refresh/attempt round).
    fn run(&mut self) -> bool {
        loop {
            if self.cancel.is_cancelled_hot() {
                return false;
            }
            self.refresh_partners();
            let Some((g, h, _closeness)) = self.global_best() else {
                return true;
            };
            self.stats.iterations += 1;
            let committed = self.attempt(g, h);
            if committed {
                self.events.emit_with("gif.merge", || format!("g{g}+g{h}"));
            } else {
                self.events
                    .emit_with("pair.blacklist", || format!("g{g}+g{h}"));
                self.blacklist.insert(pair_key(g, h));
                self.stats.failed_merges += 1;
                self.stale.insert(g);
                if g != h {
                    self.stale.insert(h);
                }
            }
        }
    }

    /// Recomputes the cached partner of every stale GIF, sharding the
    /// scans across the worker pool. All scans read the same frozen
    /// snapshot of pool, blacklist, and cache (snapshot semantics);
    /// results and cache updates are merged afterwards in stale-key
    /// order, so the outcome is identical for any thread count —
    /// including 1, which takes the same path sequentially.
    fn refresh_partners(&mut self) {
        let marked = std::mem::take(&mut self.stale);
        let mut stale: Vec<GifKey> = Vec::with_capacity(marked.len());
        for g in marked {
            if self.pool.gifs.contains_key(&g) {
                stale.push(g);
            } else {
                self.partners.remove(&g);
            }
        }
        if stale.is_empty() {
            return;
        }
        // Bring the tile summaries up to date before freezing the pool
        // for the shard workers (rebuild needs `&mut`).
        self.pool.tiles.rebuild(&self.pool.gifs);
        let use_tiles = self.use_tiles();
        let pool = &self.pool;
        let measure = self.measure;
        let pruning = self.poset_pruning;
        let blacklist = &self.blacklist;
        let cache = &self.cache;
        // Tiny refresh batches (every post-merge revalidation) go
        // sequential; only the large scans fan out. Same results either
        // way per the shard_map determinism contract.
        let threads = if stale.len() < crate::engine::MIN_PARALLEL_BATCH {
            1
        } else {
            self.threads
        };
        let timer = &self.scan_timer;
        let (partners, scratches) =
            shard_map_scratch(&stale, threads, ScanScratch::default, |scratch, &g| {
                scan_partner(
                    pool, measure, pruning, use_tiles, blacklist, cache, timer, scratch, g,
                )
            });
        for (&g, partner) in stale.iter().zip(partners) {
            self.partners.insert(g, partner);
        }
        // Merge computed closenesses in shard order. Shards are
        // contiguous chunks of `stale`, so this observes exactly the
        // stale-key order for any thread count — identical to the
        // sequential path, including the cache's budget cutoff.
        for scratch in scratches {
            for (g, cand, c) in scratch.computed {
                self.cache.insert(g, cand, c);
            }
            self.stats.closeness_computations += scratch.computations;
            self.tile_checks += scratch.tile_checks;
            self.tile_pruned += scratch.tile_pruned;
        }
    }

    /// Whole-tile rejection applies only on the poset-pruned search
    /// with a built-in metric: a disjoint summary proves member
    /// closeness is zero because the metrics derive from pair
    /// cardinalities — a guarantee a custom [`Closeness`] measure's
    /// `supports_empty_pruning` flag does not extend to profiles it
    /// never saw.
    fn use_tiles(&self) -> bool {
        self.poset_pruning
            && self.pool.tiles.enabled()
            && matches!(self.measure, MeasureRef::Metric(m) if m.supports_empty_pruning())
    }

    /// Sequential single-GIF variant of [`Engine::refresh_partners`],
    /// used by [`Engine::global_best`] to revalidate one stale entry.
    /// Reuses the engine-owned scan scratch, so revalidation allocates
    /// nothing in steady state.
    fn refresh_one(&mut self, g: GifKey) -> Option<(GifKey, f64)> {
        self.pool.tiles.rebuild(&self.pool.gifs);
        let use_tiles = self.use_tiles();
        let mut scratch = std::mem::take(&mut self.scan_scratch);
        let partner = scan_partner(
            &self.pool,
            self.measure,
            self.poset_pruning,
            use_tiles,
            &self.blacklist,
            &self.cache,
            &self.scan_timer,
            &mut scratch,
            g,
        );
        for (g, cand, c) in scratch.computed.drain(..) {
            self.cache.insert(g, cand, c);
        }
        self.stats.closeness_computations += scratch.computations;
        scratch.computations = 0;
        self.tile_checks += scratch.tile_checks;
        scratch.tile_checks = 0;
        self.tile_pruned += scratch.tile_pruned;
        scratch.tile_pruned = 0;
        self.scan_scratch = scratch;
        partner
    }

    fn global_best(&mut self) -> Option<(GifKey, GifKey, f64)> {
        loop {
            let best = self
                .partners
                .iter()
                .filter_map(|(&g, p)| p.map(|(h, c)| (g, h, c)))
                .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)))?;
            let (g, h, _) = best;
            // Validate staleness: partner may have been merged away or
            // blacklisted since it was cached.
            let valid = self.pool.gifs.contains_key(&h)
                && !self.blacklist.contains(&pair_key(g, h))
                && (g != h || self.pool.gifs[&g].units.len() >= 2);
            if valid {
                return Some(best);
            }
            let p = self.refresh_one(g);
            self.partners.insert(g, p);
            if self.partners[&g].is_none() {
                self.partners.remove(&g);
                if self.partners.is_empty() {
                    return None;
                }
            }
        }
    }

    /// Closeness of two ad-hoc profiles (CGS unions and the like) —
    /// these never live in the kernel, so built-in metrics take the
    /// per-profile pass here (same `f64` by construction).
    fn closeness(&mut self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64 {
        self.stats.closeness_computations += 1;
        match self.measure {
            MeasureRef::Metric(m) => m.closeness(a, b),
            MeasureRef::Custom(m) => m.closeness(a, b),
        }
    }

    /// Cache-aware closeness between two live GIFs' profiles.
    fn pair_closeness(&mut self, g: GifKey, h: GifKey) -> f64 {
        if let Some(c) = self.cache.get(g, h) {
            return c;
        }
        self.stats.closeness_computations += 1;
        let c = match self.measure {
            MeasureRef::Metric(m) => {
                m.from_cardinalities(self.pool.kernel.pair_cardinalities(g, h))
            }
            MeasureRef::Custom(m) => {
                m.closeness(&self.pool.gifs[&g].profile, &self.pool.gifs[&h].profile)
            }
        };
        self.cache.insert(g, h, c);
        c
    }

    /// Tests whether the pool with `removed` units replaced by `merged`
    /// still allocates; on success records the allocation when it is at
    /// least as good (broker count) as the best seen — later ties win
    /// because more clustering means less duplicated traffic. Keeping
    /// the best rather than merely the last successful scheme preserves
    /// the paper's fallback guarantee while making CRAM never allocate
    /// more brokers than plain BIN PACKING.
    ///
    /// `removed` must be sorted ascending (the callers reuse
    /// [`Engine::removed_buf`] for it).
    fn test_and_record(&mut self, removed: &[UnitKey], merged: &Unit) -> bool {
        match &mut self.pack {
            PackPath::Reference => {
                let units: Vec<&Unit> = self
                    .pool
                    .units
                    .iter()
                    .filter(|(k, _)| removed.binary_search(k).is_err())
                    .map(|(_, u)| &**u)
                    .chain(std::iter::once(merged))
                    .collect();
                let mut packer = RefPacker::new(self.brokers);
                if packer.pack_sorted(self.publishers, units).is_err() {
                    return false;
                }
                if packer.used_brokers() <= self.best.broker_count() {
                    self.best = BestAlloc::Full(packer.into_allocation(self.publishers));
                }
            }
            PackPath::Fast { packer, order } => {
                let merged_arc = Arc::new(merged.clone());
                let live = order
                    .iter()
                    .filter(|e| removed.binary_search(&e.key).is_err())
                    .map(|e| &e.unit);
                let stream = MergedOrder {
                    inner: live.peekable(),
                    merged: Some(&merged_arc),
                };
                if packer.pack(stream).is_err() {
                    return false;
                }
                let used = packer.used_brokers();
                if used <= self.best.broker_count() {
                    if let BestAlloc::Recipe { brokers, picks } = &mut self.best {
                        *brokers = used;
                        packer.drain_picks_into(picks);
                    }
                }
            }
        }
        true
    }

    /// Commits a merge: removes `removals` (gif, unit) pairs, inserts
    /// the merged unit, and invalidates affected partner and
    /// pair-closeness caches. Only GIFs merged away (deleted) lose
    /// their cache entries — a surviving GIF's profile is unchanged by
    /// losing a unit, so its cached closenesses remain exact.
    fn commit(&mut self, removals: impl IntoIterator<Item = (GifKey, UnitKey)>, merged: Unit) {
        let mut touched: BTreeSet<GifKey> = BTreeSet::new();
        for (gk, uk) in removals {
            let (unit, gif_deleted) = self.pool.remove_unit(gk, uk);
            if let PackPath::Fast { order, .. } = &mut self.pack {
                match order.binary_search_by(|e| pack_order(&e.unit, &unit)) {
                    Ok(pos) => {
                        order.remove(pos);
                    }
                    // Unreachable under the strict pack order; fall
                    // back to dropping by key to stay safe.
                    Err(_) => order.retain(|e| e.key != uk),
                }
            }
            if gif_deleted {
                self.partners.remove(&gk);
                self.cache.invalidate(gk);
                // Any GIF whose cached partner was gk must recompute.
                // `partners` and `stale` are disjoint fields, so this
                // marks them directly without collecting.
                for (&k, p) in &self.partners {
                    if matches!(p, Some((h, _)) if *h == gk) {
                        self.stale.insert(k);
                    }
                }
            } else {
                touched.insert(gk);
            }
        }
        let (new_uk, new_gif) = self.pool.add_unit(merged);
        if let PackPath::Fast { order, .. } = &mut self.pack {
            if let Some(u) = self.pool.units.get(&new_uk) {
                let pos = order
                    .binary_search_by(|e| pack_order(&e.unit, u))
                    .unwrap_or_else(|p| p);
                order.insert(
                    pos,
                    PackEntry {
                        key: new_uk,
                        unit: Arc::clone(u),
                    },
                );
            }
        }
        touched.insert(new_gif);
        self.stale.extend(touched);
        self.stats.merges += 1;
    }

    /// One clustering attempt on the pair `(g, h)`; returns `true` when
    /// a merge was committed.
    fn attempt(&mut self, g: GifKey, h: GifKey) -> bool {
        if g == h {
            return self.attempt_equal(g);
        }
        // One kernel pass classifies the pair — same decision procedure
        // as `SubscriptionProfile::relationship`, on whichever layout
        // the profiles live in.
        let rel = Relation::from_cardinalities(self.pool.kernel.pair_cardinalities(g, h));
        match rel {
            Relation::Equal => self.attempt_equal(g),
            Relation::Superset => self.attempt_covering(g, h),
            Relation::Subset => self.attempt_covering(h, g),
            Relation::Intersect => {
                if self.one_to_many && (self.attempt_cgs(g, h) || self.attempt_cgs(h, g)) {
                    self.stats.one_to_many_merges += 1;
                    return true;
                }
                self.attempt_pairwise(g, h)
            }
            Relation::Empty => false,
        }
    }

    /// Equal relationship: binary-search the largest allocatable cluster
    /// of the GIF's own units (lightest first).
    fn attempt_equal(&mut self, g: GifKey) -> bool {
        let units = self.pool.gifs[&g].units.clone();
        if units.len() < 2 {
            return false;
        }
        let merged_of = |pool: &Pool, k: usize| -> Unit {
            let mut it = units[..k].iter();
            let first =
                (*pool.units[it.next().expect("attempt_equal requires >= 2 units")]).clone();
            it.fold(first, |acc, uk| acc.merge(&pool.units[uk]))
        };
        let feasible = |engine: &mut Self, k: usize| -> bool {
            let mut removed = std::mem::take(&mut engine.removed_buf);
            removed.clear();
            removed.extend(units[..k].iter().copied());
            removed.sort_unstable();
            let m = merged_of(&engine.pool, k);
            let ok = engine.test_and_record(&removed, &m);
            engine.removed_buf = removed;
            ok
        };
        if !feasible(self, 2) {
            return false;
        }
        let (mut lo, mut hi) = (2usize, units.len());
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if feasible(self, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let k = lo;
        if matches!(self.pack, PackPath::Reference) {
            // Re-run the winning size so `best` reflects the committed
            // pool (legacy behaviour, byte-for-byte). The fast path
            // skips this: the last successful probe was exactly size
            // `k` — probes only raise `lo` on success and the pool is
            // frozen during the search — so its recipe is already
            // recorded and the re-pack would be a no-op.
            assert!(feasible(self, k));
        }
        let merged = merged_of(&self.pool, k);
        self.commit(units[..k].iter().map(|&uk| (g, uk)), merged);
        true
    }

    /// Superset/subset relationship: cluster the lightest unit of the
    /// covering GIF with a binary-searched prefix of the covered GIF's
    /// units (sorted ascending by bandwidth).
    fn attempt_covering(&mut self, cover: GifKey, covered: GifKey) -> bool {
        let cover_unit = self.pool.lightest(cover);
        let covered_units = self.pool.gifs[&covered].units.clone();
        let merged_of = |pool: &Pool, m: usize| -> Unit {
            covered_units[..m]
                .iter()
                .fold((*pool.units[&cover_unit]).clone(), |acc, uk| {
                    acc.merge(&pool.units[uk])
                })
        };
        let feasible = |engine: &mut Self, m: usize| -> bool {
            let mut removed = std::mem::take(&mut engine.removed_buf);
            removed.clear();
            removed.extend(covered_units[..m].iter().copied());
            removed.push(cover_unit);
            removed.sort_unstable();
            let u = merged_of(&engine.pool, m);
            let ok = engine.test_and_record(&removed, &u);
            engine.removed_buf = removed;
            ok
        };
        if !feasible(self, 1) {
            return false;
        }
        let (mut lo, mut hi) = (1usize, covered_units.len());
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if feasible(self, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let m = lo;
        if matches!(self.pack, PackPath::Reference) {
            // Legacy re-pack of the winning size; the fast path's last
            // successful probe was exactly size `m`, so its recipe is
            // already recorded (see attempt_equal).
            assert!(feasible(self, m));
        }
        let merged = merged_of(&self.pool, m);
        self.commit(
            covered_units[..m]
                .iter()
                .map(|&uk| (covered, uk))
                .chain(std::iter::once((cover, cover_unit))),
            merged,
        );
        true
    }

    /// Pairwise intersect merge: lightest unit from each GIF.
    fn attempt_pairwise(&mut self, g: GifKey, h: GifKey) -> bool {
        let ug = self.pool.lightest(g);
        let uh = self.pool.lightest(h);
        let merged = self.pool.units[&ug].merge(&self.pool.units[&uh]);
        let mut removed = std::mem::take(&mut self.removed_buf);
        removed.clear();
        removed.extend([ug, uh]);
        removed.sort_unstable();
        let ok = self.test_and_record(&removed, &merged);
        self.removed_buf = removed;
        if !ok {
            return false;
        }
        self.commit([(g, ug), (h, uh)], merged);
        true
    }

    /// Optimization 3: try clustering `g` with a greedy set-cover
    /// selection of its covered GIFs (the CGS), bounded by the load of
    /// the original candidate pair `(g, h)`. A thin wrapper that swaps
    /// the reusable CGS buffers in and out around the real work, so the
    /// descent/cover/removal vectors are not reallocated per attempt.
    fn attempt_cgs(&mut self, g: GifKey, h: GifKey) -> bool {
        let mut scratch = std::mem::take(&mut self.cgs_scratch);
        let ok = self.attempt_cgs_with(g, h, &mut scratch);
        self.cgs_scratch = scratch;
        ok
    }

    fn attempt_cgs_with(&mut self, g: GifKey, h: GifKey, scratch: &mut CgsScratch) -> bool {
        // Covered GIFs = poset descendants of g. `remaining` doubles as
        // the descendant accumulator and the set-cover worklist.
        let CgsScratch {
            remaining,
            frontier,
            seen,
            cgs,
            removals,
        } = scratch;
        remaining.clear();
        frontier.clear();
        seen.clear();
        cgs.clear();
        removals.clear();
        frontier.extend(self.pool.poset.children(g));
        while let Some(n) = frontier.pop() {
            if seen.insert(n) {
                remaining.push(n);
                frontier.extend(self.pool.poset.children(n));
            }
        }
        if remaining.is_empty() {
            return false;
        }
        // A CGS takes at most every descendant, and removals one more
        // entry for the parent itself.
        cgs.reserve(remaining.len());
        removals.reserve(remaining.len() + 1);

        let g_unit = self.pool.lightest(g);
        let budget = self.pool.units[&g_unit].out_bandwidth
            + self.pool.units[&self.pool.lightest(h)].out_bandwidth;

        // Greedy set cover over the descendants' profiles: repeatedly
        // take the GIF contributing the most bits not already in the
        // CGS, until the next addition would exceed the pair's load.
        // (`SubscriptionProfile::new` is an empty map + capacity — it
        // does not allocate until bits are recorded into it.)
        let mut cgs_union = SubscriptionProfile::new();
        let mut total_bw = self.pool.units[&g_unit].out_bandwidth;
        loop {
            let mut best: Option<(usize, usize)> = None; // (new_bits, idx)
            for (i, &d) in remaining.iter().enumerate() {
                let p = &self.pool.gifs[&d].profile;
                let new_bits = cgs_union.union_count(p) - cgs_union.count_ones();
                if new_bits > 0 {
                    match best {
                        Some((nb, _)) if nb >= new_bits => {}
                        _ => best = Some((new_bits, i)),
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let d = remaining.swap_remove(i);
            let d_unit = self.pool.lightest(d);
            let bw = self.pool.units[&d_unit].out_bandwidth;
            if total_bw + bw > budget {
                break; // terminating condition: fair load comparison
            }
            total_bw += bw;
            cgs_union.or_assign(&self.pool.gifs[&d].profile);
            cgs.push(d);
        }
        if cgs.is_empty() {
            return false;
        }

        // The CGS is valid only when its closeness with the parent GIF
        // beats the original pair's closeness. The (g, h) value is a
        // GIF pair, so it is served from (and fills) the pair cache;
        // the CGS union is an ad-hoc profile and is measured directly.
        let g_profile = self.pool.gifs[&g].profile.clone();
        let pair_c = self.pair_closeness(g, h);
        let cgs_c = self.closeness(&g_profile, &cgs_union);
        if cgs_c <= pair_c {
            return false;
        }

        // Merge the parent's lightest unit with each CGS GIF's lightest.
        removals.push((g, g_unit));
        let mut merged = (*self.pool.units[&g_unit]).clone();
        for &d in cgs.iter() {
            let uk = self.pool.lightest(d);
            merged = merged.merge(&self.pool.units[&uk]);
            removals.push((d, uk));
        }
        let mut removed = std::mem::take(&mut self.removed_buf);
        removed.clear();
        removed.extend(removals.iter().map(|(_, uk)| *uk));
        removed.sort_unstable();
        let ok = self.test_and_record(&removed, &merged);
        self.removed_buf = removed;
        if !ok {
            return false;
        }
        self.commit(removals.drain(..), merged);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
    use greenps_pubsub::Filter;

    fn never() -> CancelToken {
        CancelToken::never()
    }

    fn publishers() -> PublisherTable {
        [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect()
    }

    fn entry(id: u64, ids: &[u64]) -> SubscriptionEntry {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &x in ids {
            v.record(x);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(1), v);
        SubscriptionEntry::new(SubId::new(id), Filter::new(), p)
    }

    fn brokers(n: u64, bw: f64) -> Vec<BrokerSpec> {
        (0..n)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0001, 0.0),
                    bw,
                )
            })
            .collect()
    }

    fn run(input: &AllocationInput, metric: ClosenessMetric) -> (Allocation, CramStats) {
        CramBuilder::new(metric).run(input).unwrap()
    }

    /// 12 identical subscriptions cluster down to a handful of brokers.
    #[test]
    fn equal_subscriptions_collapse() {
        let subs: Vec<SubscriptionEntry> = (0..12)
            .map(|i| entry(i, &(0..20).collect::<Vec<_>>()))
            .collect();
        // Each sub needs 20 kB/s; brokers hold 100 kB/s → ≥3 brokers
        // minimum (12×20/100 = 2.4 → but strict inequality → 3).
        let input = AllocationInput {
            brokers: brokers(12, 100_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let baseline = crate::sorting::bin_packing(&input).unwrap().broker_count();
        for metric in ClosenessMetric::ALL {
            let (alloc, stats) = run(&input, metric);
            assert_eq!(alloc.sub_count(), 12, "{metric}");
            assert!(
                alloc.broker_count() <= baseline,
                "{metric}: {} vs baseline {}",
                alloc.broker_count(),
                baseline
            );
            assert_eq!(stats.initial_gifs, 1, "{metric}: all profiles equal");
            assert!(stats.merges > 0, "{metric}");
        }
    }

    /// Two disjoint interest groups: clustering stays within groups.
    #[test]
    fn disjoint_groups_cluster_independently() {
        let mut subs = Vec::new();
        for i in 0..6 {
            subs.push(entry(i, &(0..10).collect::<Vec<_>>()));
        }
        for i in 6..12 {
            subs.push(entry(i, &(50..60).collect::<Vec<_>>()));
        }
        let input = AllocationInput {
            brokers: brokers(12, 80_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (alloc, _) = run(&input, ClosenessMetric::Ios);
        assert_eq!(alloc.sub_count(), 12);
        // Each group needs 60 kB/s total → one broker per group.
        assert_eq!(alloc.broker_count(), 2);
        // No broker mixes the two interest groups (input rate 10 msg/s
        // each — mixing would read 20).
        for load in &alloc.loads {
            assert!(load.in_rate < 10.5, "groups were mixed: {}", load.in_rate);
        }
    }

    /// CRAM with overlapping subscriptions beats BIN PACKING on message
    /// rate (input union) even when broker counts tie.
    #[test]
    fn clustering_reduces_total_input_rate() {
        let mut subs = Vec::new();
        // 4 interest groups of 5 subs each, pairwise disjoint.
        for group in 0..4u64 {
            for i in 0..5u64 {
                let base = group * 25;
                let ids: Vec<u64> = (base..base + 20).collect();
                subs.push(entry(group * 5 + i, &ids));
            }
        }
        let input = AllocationInput {
            brokers: brokers(10, 220_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let bp = crate::sorting::bin_packing(&input).unwrap();
        let (cr, _) = run(&input, ClosenessMetric::Iou);
        let total_in = |a: &Allocation| a.loads.iter().map(|l| l.in_rate).sum::<f64>();
        assert!(
            total_in(&cr) <= total_in(&bp) + 1e-9,
            "cram {} vs bp {}",
            total_in(&cr),
            total_in(&bp)
        );
        assert!(cr.broker_count() <= bp.broker_count());
    }

    #[test]
    fn infeasible_baseline_errors() {
        let input = AllocationInput {
            brokers: brokers(1, 1_000.0),
            subscriptions: vec![entry(0, &(0..50).collect::<Vec<_>>())],
            publishers: publishers(),
        };
        assert!(CramBuilder::from_config(CramConfig::default())
            .run(&input)
            .is_err());
    }

    #[test]
    fn empty_subscription_pool_is_fine() {
        let input = AllocationInput {
            brokers: brokers(3, 1e6),
            subscriptions: vec![],
            publishers: publishers(),
        };
        let (alloc, stats) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
        assert_eq!(alloc.broker_count(), 0);
        assert_eq!(stats.initial_gifs, 0);
    }

    #[test]
    fn gif_grouping_reduces_pool() {
        // 30 subscriptions, only 3 distinct profiles.
        let subs: Vec<SubscriptionEntry> = (0..30)
            .map(|i| {
                let group = i % 3;
                let ids: Vec<u64> = (group * 30..group * 30 + 10).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(30, 60_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (_, stats) = run(&input, ClosenessMetric::Intersect);
        assert_eq!(stats.initial_gifs, 3);
        assert_eq!(stats.subscriptions, 30);
    }

    #[test]
    fn pruning_reduces_closeness_computations() {
        // Many small disjoint groups: pruned search skips empty
        // subtrees, the unpruned one computes closeness with everyone.
        let subs: Vec<SubscriptionEntry> = (0..40)
            .map(|i| {
                let group = i % 8;
                let ids: Vec<u64> = (group * 12..group * 12 + 6 + (i % 3)).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(40, 400_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (_, pruned) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
        let (_, full) = CramBuilder::new(ClosenessMetric::Ios)
            .poset_pruning(false)
            .run(&input)
            .unwrap();
        assert!(
            pruned.closeness_computations < full.closeness_computations,
            "pruned {} vs full {}",
            pruned.closeness_computations,
            full.closeness_computations
        );
    }

    #[test]
    fn allocations_always_satisfy_capacity() {
        let subs: Vec<SubscriptionEntry> = (0..25)
            .map(|i| {
                let ids: Vec<u64> = (i..i + 15).map(|x| (x * 3) % 100).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(8, 150_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        for metric in ClosenessMetric::ALL {
            let (alloc, _) = run(&input, metric);
            assert_eq!(alloc.sub_count(), 25, "{metric}");
            for load in &alloc.loads {
                let spec = input.brokers.iter().find(|b| b.id == load.broker).unwrap();
                assert!(load.out_bw_used < spec.out_bandwidth, "{metric}");
                assert!(
                    load.in_rate <= spec.matching_delay.max_rate(load.sub_count()) + 1e-9,
                    "{metric}"
                );
            }
        }
    }

    #[test]
    fn custom_closeness_measure_plugs_in() {
        // A measure that only values exact-equality clustering: CRAM
        // still terminates and produces a feasible allocation.
        struct EqualOnly;
        impl greenps_profile::Closeness for EqualOnly {
            fn closeness(&self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64 {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            fn supports_empty_pruning(&self) -> bool {
                true
            }
        }
        let subs: Vec<SubscriptionEntry> = (0..10)
            .map(|i| entry(i, &((i % 2) * 30..(i % 2) * 30 + 10).collect::<Vec<_>>()))
            .collect();
        let input = AllocationInput {
            brokers: brokers(10, 100_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let units = crate::sorting::units_from_input(&input);
        let (alloc, stats) = CramBuilder::custom(&EqualOnly)
            .run_units(&input, units)
            .unwrap();
        assert_eq!(alloc.sub_count(), 10);
        assert!(stats.merges > 0, "equal groups merged");
        // Only equal-profile merges happened: every unit's members share
        // one profile → per-broker input rate stays at one group's rate.
        for load in &alloc.loads {
            assert!(load.in_rate <= 20.0 + 1e-9);
        }
    }

    #[test]
    fn blacklisted_pairs_are_not_retried() {
        // Two heavy intersecting groups whose merge cannot fit any
        // broker: CRAM must terminate (blacklist) rather than loop.
        let mut subs = Vec::new();
        for i in 0..4 {
            subs.push(entry(i, &(0..60).collect::<Vec<_>>()));
        }
        for i in 4..8 {
            subs.push(entry(i, &(40..100).collect::<Vec<_>>()));
        }
        // Each sub needs 60 kB/s; brokers hold 130 kB/s → max two subs
        // per broker; a 3-sub cluster (180) can never fit.
        let input = AllocationInput {
            brokers: brokers(8, 130_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (alloc, stats) = CramBuilder::new(ClosenessMetric::Intersect)
            .run(&input)
            .unwrap();
        assert_eq!(alloc.sub_count(), 8);
        assert!(stats.failed_merges > 0, "some merges must fail: {stats:?}");
        assert!(stats.iterations < 1000, "terminates promptly");
    }

    #[test]
    fn one_to_many_prefers_covered_sets() {
        // A broad GIF covering several narrow ones plus an intersecting
        // sibling — the Figure 3 scenario. With one-to-many enabled, at
        // least one CGS merge should fire.
        let mut subs = Vec::new();
        subs.push(entry(0, &(0..36).collect::<Vec<_>>())); // S1 broad
        subs.push(entry(1, &(28..52).collect::<Vec<_>>())); // S2 intersecting
                                                            // covered 4-bit blocks of S1
        for (i, base) in [0u64, 8, 16].iter().enumerate() {
            subs.push(entry(2 + i as u64, &(*base..base + 4).collect::<Vec<_>>()));
        }
        // covered 1-bit subs of S2
        for i in 0..4u64 {
            subs.push(entry(5 + i, &[40 + i]));
        }
        let input = AllocationInput {
            brokers: brokers(9, 150_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (_, with) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
        assert!(with.one_to_many_merges > 0, "stats: {with:?}");
    }

    /// Builds a ready-to-run [`Engine`] the way `run_units` does, for
    /// tests that need to poke at engine internals.
    fn engine_for<'a>(
        input: &'a AllocationInput,
        metric: &'a dyn greenps_profile::Closeness,
    ) -> Engine<'a> {
        let units = crate::sorting::units_from_input(input);
        let baseline =
            bin_packing_units(&input.brokers, &input.publishers, units.clone(), &never()).unwrap();
        let pool = Pool::build(units, Layout::PerProfile, 0, &never()).unwrap();
        let mut engine = Engine {
            pool,
            cancel: never(),
            measure: MeasureRef::Custom(metric),
            one_to_many: true,
            poset_pruning: true,
            threads: 1,
            publishers: &input.publishers,
            brokers: &input.brokers,
            partners: BTreeMap::new(),
            stale: BTreeSet::new(),
            blacklist: BTreeSet::new(),
            cache: PairCache::default(),
            stats: CramStats::default(),
            best: BestAlloc::Full(baseline),
            pack: PackPath::Reference,
            tile_checks: 0,
            tile_pruned: 0,
            scan_timer: Histogram::noop(),
            events: EventSink::noop(),
            scan_scratch: ScanScratch::default(),
            removed_buf: Vec::new(),
            cgs_scratch: CgsScratch::default(),
        };
        engine.stale.extend(engine.pool.gifs.keys().copied());
        engine
    }

    /// A token tripped before the run aborts in the baseline packing,
    /// before any engine work starts.
    #[test]
    fn pre_cancelled_token_aborts_the_run() {
        let input = AllocationInput {
            brokers: brokers(4, 100_000.0),
            subscriptions: (0..8).map(|i| entry(i, &[i, i + 1])).collect(),
            publishers: publishers(),
        };
        let token = CancelToken::new();
        token.cancel();
        let err = CramBuilder::new(ClosenessMetric::Ios)
            .cancel_token(&token)
            .run(&input)
            .unwrap_err();
        assert_eq!(err.to_string(), AllocError::Cancelled.to_string());
    }

    /// The merge loop itself polls the token: a cancellation tripped
    /// after engine construction stops the iteration at the next
    /// loop-top poll instead of running to convergence.
    #[test]
    fn merge_loop_polls_the_cancel_token() {
        let input = AllocationInput {
            brokers: brokers(4, 100_000.0),
            subscriptions: vec![
                entry(0, &(0..10).collect::<Vec<_>>()),
                entry(1, &(5..15).collect::<Vec<_>>()),
            ],
            publishers: publishers(),
        };
        let metric = ClosenessMetric::Ios;
        let mut engine = engine_for(&input, &metric);
        engine.cancel.cancel();
        assert!(!engine.run(), "tripped token stops the merge loop");
        assert_eq!(engine.stats.merges, 0, "no merge ran after the trip");
    }

    /// Merging a GIF away must drop every cached closeness touching it
    /// — a stale entry served later would reflect the pre-merge
    /// profile.
    #[test]
    fn cache_invalidated_for_merged_gifs() {
        // Two intersecting singleton GIFs; merging them deletes both.
        let input = AllocationInput {
            brokers: brokers(4, 100_000.0),
            subscriptions: vec![
                entry(0, &(0..10).collect::<Vec<_>>()),
                entry(1, &(5..15).collect::<Vec<_>>()),
            ],
            publishers: publishers(),
        };
        let metric = ClosenessMetric::Ios;
        let mut engine = engine_for(&input, &metric);
        engine.refresh_partners();
        let (g, h, _) = engine.global_best().unwrap();
        assert!(g != h);
        assert!(
            engine.cache.get(g, h).is_some(),
            "refresh populated the pair cache"
        );
        assert!(engine.attempt(g, h), "merge must succeed");
        // The attempt consulted the pair cache populated by the refresh:
        // a non-zero hit rate is what makes the memo table worth having.
        let cache_stats = engine.cache.stats();
        assert!(cache_stats.hits > 0, "stats: {cache_stats:?}");
        assert!(cache_stats.hit_rate() > 0.0);
        // Both source GIFs were merged away: nothing cached may touch
        // them any more, in either key order.
        assert!(!engine.cache.touches(g));
        assert!(!engine.cache.touches(h));
        assert_eq!(engine.cache.get(g, h), None);
        assert_eq!(engine.cache.get(h, g), None);
    }

    /// A GIF that survives a merge (loses a unit but keeps its profile)
    /// must keep its cache entries — only merged-away GIFs invalidate.
    #[test]
    fn cache_kept_for_surviving_gifs() {
        // GIF A holds two equal units; GIF B intersects A. Pairwise-
        // merging A and B consumes one of A's units, so A survives.
        let wide: Vec<u64> = (0..10).collect();
        let input = AllocationInput {
            brokers: brokers(5, 100_000.0),
            subscriptions: vec![
                entry(0, &wide),
                entry(1, &wide),
                entry(2, &(5..15).collect::<Vec<_>>()),
            ],
            publishers: publishers(),
        };
        let metric = ClosenessMetric::Ios;
        let mut engine = engine_for(&input, &metric);
        engine.refresh_partners();
        let a = engine
            .pool
            .by_profile
            .values()
            .copied()
            .find(|gk| engine.pool.gifs[gk].units.len() == 2)
            .unwrap();
        let b = engine.pool.gifs.keys().copied().find(|&k| k != a).unwrap();
        assert!(engine.cache.get(a, b).is_some());
        assert!(engine.attempt_pairwise(a, b), "pairwise merge succeeds");
        assert!(
            engine.pool.gifs.contains_key(&a),
            "A keeps its second unit and survives"
        );
        // B was merged away; A survived with an unchanged profile.
        assert!(!engine.cache.touches(b));
        assert!(
            engine.cache.touches(a),
            "surviving GIF keeps cached closenesses to live partners"
        );
        assert_eq!(engine.cache.get(a, b), None);
        assert!(
            engine.cache.stats().hits > 0,
            "the merge path re-read cached closenesses"
        );
    }

    /// The parallel search must return exactly the sequential result —
    /// allocation and stats — for every thread count.
    #[test]
    fn parallel_threads_match_sequential() {
        let subs: Vec<SubscriptionEntry> = (0..30)
            .map(|i| {
                let ids: Vec<u64> = (i..i + 12).map(|x| (x * 7) % 90).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(10, 200_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        for metric in ClosenessMetric::ALL {
            let (seq_alloc, seq_stats) = CramBuilder::new(metric).run(&input).unwrap();
            for threads in [2usize, 4, 8] {
                let (par_alloc, par_stats) = CramBuilder::new(metric)
                    .threads(threads)
                    .run(&input)
                    .unwrap();
                assert_eq!(par_alloc.loads, seq_alloc.loads, "{metric} t={threads}");
                assert_eq!(par_stats, seq_stats, "{metric} t={threads}");
            }
        }
    }

    /// Layout and tile are pure performance knobs: the allocation is
    /// bit-identical to the per-profile reference, and every stat
    /// except `closeness_computations` (which tiling may lower, never
    /// raise) matches exactly.
    #[test]
    fn layouts_and_tiles_are_bit_identical() {
        let subs: Vec<SubscriptionEntry> = (0..30)
            .map(|i| {
                let group = i % 6;
                let ids: Vec<u64> = (group * 15..group * 15 + 8 + (i % 4)).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(30, 300_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        for metric in ClosenessMetric::ALL {
            let (ref_alloc, ref_stats) = CramBuilder::new(metric)
                .layout(Layout::PerProfile)
                .tile(0)
                .run(&input)
                .unwrap();
            for (layout, tile) in [
                (Layout::Arena { stride: 0 }, 0usize),
                (Layout::PerProfile, 3),
                (Layout::Arena { stride: 0 }, 3),
                (Layout::Arena { stride: 0 }, DEFAULT_TILE),
            ] {
                let (alloc, stats) = CramBuilder::new(metric)
                    .layout(layout)
                    .tile(tile)
                    .run(&input)
                    .unwrap();
                assert_eq!(
                    alloc.loads, ref_alloc.loads,
                    "{metric} {layout:?} tile={tile}"
                );
                if tile == 0 {
                    assert_eq!(stats, ref_stats, "{metric} {layout:?}");
                } else {
                    assert!(
                        stats.closeness_computations <= ref_stats.closeness_computations,
                        "{metric} {layout:?} tile={tile}: {} > {}",
                        stats.closeness_computations,
                        ref_stats.closeness_computations
                    );
                    let mut normalized = stats;
                    normalized.closeness_computations = ref_stats.closeness_computations;
                    assert_eq!(normalized, ref_stats, "{metric} {layout:?} tile={tile}");
                }
            }
        }
    }

    /// Every tile summary must be a superset of each member profile —
    /// the invariant that makes whole-tile rejection sound — even when
    /// member windows start at different ids (the widening case).
    #[test]
    fn tile_summaries_cover_members() {
        let subs: Vec<SubscriptionEntry> = (0..24)
            .map(|i| {
                let group = i % 8;
                // Shifted, partially-overlapping windows per group.
                let ids: Vec<u64> = (group * 11..group * 11 + 6 + (i % 3)).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(24, 300_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let units = crate::sorting::units_from_input(&input);
        let mut pool = Pool::build(units, Layout::Arena { stride: 0 }, 3, &never()).unwrap();
        pool.tiles.rebuild(&pool.gifs);
        assert!(pool.gifs.len() > 3, "need several buckets");
        for (gk, gif) in &pool.gifs {
            let b = pool.tiles.bucket_of(*gk);
            let summary = pool.tiles.summary(b).expect("bucket exists for member");
            assert_eq!(
                gif.profile.intersect_count(summary),
                gif.profile.count_ones(),
                "summary must cover every bit of member {gk:?}"
            );
        }
    }

    /// With many mutually disjoint groups, whole-tile rejection skips
    /// member evaluations the untiled engine pays for — fewer
    /// closeness computations, identical allocation.
    #[test]
    fn tile_pruning_reduces_closeness_computations() {
        let subs: Vec<SubscriptionEntry> = (0..48)
            .map(|i| {
                let group = i % 12;
                let ids: Vec<u64> = (group * 8..group * 8 + 5 + (i % 3)).collect();
                entry(i, &ids)
            })
            .collect();
        let input = AllocationInput {
            brokers: brokers(48, 60_000.0),
            subscriptions: subs,
            publishers: publishers(),
        };
        let (tiled_alloc, tiled) = CramBuilder::new(ClosenessMetric::Ios)
            .tile(2)
            .run(&input)
            .unwrap();
        let (flat_alloc, flat) = CramBuilder::new(ClosenessMetric::Ios)
            .tile(0)
            .run(&input)
            .unwrap();
        assert_eq!(tiled_alloc.loads, flat_alloc.loads);
        assert!(
            tiled.closeness_computations < flat.closeness_computations,
            "tiled {} vs flat {}",
            tiled.closeness_computations,
            flat.closeness_computations
        );
    }
}
