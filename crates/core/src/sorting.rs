//! The two sorting allocation algorithms: FBF and BIN PACKING
//! (paper §IV-A, §IV-B).
//!
//! * **FBF** (Fastest Broker First): brokers sorted in descending
//!   resource capacity; subscriptions drawn in *random* order and placed
//!   on the most resourceful broker with capacity. `O(S)`.
//! * **BIN PACKING**: identical except subscriptions are first sorted in
//!   descending bandwidth requirement. `O(S log S)`. The paper observes
//!   it consistently allocates one broker fewer than FBF, in line with
//!   first-fit-decreasing theory.

use crate::capacity::pack_all;
use crate::model::{AllocError, Allocation, AllocationInput, Unit};
use crate::pipeline::CancelToken;
use greenps_profile::PublisherTable;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Builds singleton units for every subscription in the input.
pub fn units_from_input(input: &AllocationInput) -> Vec<Unit> {
    input
        .subscriptions
        .iter()
        .map(|s| Unit::from_subscription(s, &input.publishers))
        .collect()
}

/// Fastest Broker First: random subscription order, most resourceful
/// broker first.
///
/// `seed` fixes the random draw order so experiments are reproducible.
///
/// # Errors
/// Fails when any subscription cannot be placed on any broker.
pub fn fbf(input: &AllocationInput, seed: u64) -> Result<Allocation, AllocError> {
    fbf_cancellable(input, seed, &CancelToken::never())
}

/// [`fbf`] with a cancellation token: the packing pass polls it between
/// units and stops with [`AllocError::Cancelled`].
///
/// # Errors
/// As [`fbf`], plus [`AllocError::Cancelled`] when the token trips.
pub(crate) fn fbf_cancellable(
    input: &AllocationInput,
    seed: u64,
    cancel: &CancelToken,
) -> Result<Allocation, AllocError> {
    let mut units = units_from_input(input);
    let mut rng = StdRng::seed_from_u64(seed);
    units.shuffle(&mut rng);
    pack_all(&input.brokers, &input.publishers, units, cancel)
}

/// BIN PACKING: subscriptions sorted by descending bandwidth
/// requirement, most resourceful broker first.
///
/// # Errors
/// Fails when any subscription cannot be placed on any broker.
pub fn bin_packing(input: &AllocationInput) -> Result<Allocation, AllocError> {
    bin_packing_cancellable(input, &CancelToken::never())
}

/// [`bin_packing`] with a cancellation token: the packing pass polls it
/// between units and stops with [`AllocError::Cancelled`].
///
/// # Errors
/// As [`bin_packing`], plus [`AllocError::Cancelled`] when the token
/// trips.
pub(crate) fn bin_packing_cancellable(
    input: &AllocationInput,
    cancel: &CancelToken,
) -> Result<Allocation, AllocError> {
    let units = units_from_input(input);
    bin_packing_units(&input.brokers, &input.publishers, units, cancel)
}

/// BIN PACKING over prebuilt units — the allocation test CRAM re-runs on
/// every clustering iteration, and the allocator Phase 3 reuses for
/// virtual subscriptions.
///
/// # Errors
/// Fails when any unit cannot be placed on any broker.
pub fn bin_packing_units(
    brokers: &[crate::model::BrokerSpec],
    publishers: &PublisherTable,
    mut units: Vec<Unit>,
    cancel: &CancelToken,
) -> Result<Allocation, AllocError> {
    units.sort_by(|a, b| {
        b.out_bandwidth
            .partial_cmp(&a.out_bandwidth)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.subs.cmp(&b.subs))
    });
    pack_all(brokers, publishers, units, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use greenps_profile::{
        PublisherProfile, PublisherTable, ShiftingBitVector, SubscriptionProfile,
    };
    use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
    use greenps_pubsub::Filter;

    /// Builds an input with `n` subscriptions of varying bandwidth on
    /// `b` identical brokers.
    fn input(n: u64, b: u64, broker_bw: f64) -> AllocationInput {
        let publishers: PublisherTable = [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect();
        let subscriptions = (0..n)
            .map(|i| {
                let mut v = ShiftingBitVector::starting_at(100, 0);
                // subscription i sinks (i % 10) + 1 of the 100 slots
                for k in 0..=(i % 10) {
                    v.record((i * 7 + k * 11) % 100);
                }
                let mut p = SubscriptionProfile::with_capacity(100);
                p.insert_vector(AdvId::new(1), v);
                SubscriptionEntry::new(SubId::new(i), Filter::new(), p)
            })
            .collect();
        let brokers = (0..b)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0001, 0.0),
                    broker_bw,
                )
            })
            .collect();
        AllocationInput {
            brokers,
            subscriptions,
            publishers,
        }
    }

    #[test]
    fn fbf_allocates_everything() {
        let inp = input(50, 10, 100_000.0);
        let alloc = fbf(&inp, 1).unwrap();
        assert_eq!(alloc.sub_count(), 50);
        assert!(alloc.broker_count() >= 1);
    }

    #[test]
    fn fbf_is_deterministic_per_seed() {
        let inp = input(40, 10, 60_000.0);
        let a = fbf(&inp, 7).unwrap();
        let b = fbf(&inp, 7).unwrap();
        let ids = |x: &Allocation| {
            x.loads
                .iter()
                .map(|l| (l.broker, l.sub_count()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn bin_packing_never_worse_than_fbf() {
        // Across several seeds, BIN PACKING (first-fit-decreasing)
        // allocates no more brokers than FBF — the paper reports one
        // fewer consistently.
        let inp = input(120, 20, 50_000.0);
        let bp = bin_packing(&inp).unwrap().broker_count();
        for seed in 0..5 {
            let f = fbf(&inp, seed).unwrap().broker_count();
            assert!(bp <= f, "bin packing {bp} vs fbf {f} (seed {seed})");
        }
    }

    #[test]
    fn allocation_respects_capacity() {
        let inp = input(100, 20, 40_000.0);
        let alloc = bin_packing(&inp).unwrap();
        for load in &alloc.loads {
            let spec = inp.brokers.iter().find(|b| b.id == load.broker).unwrap();
            assert!(load.out_bw_used < spec.out_bandwidth);
            let max = spec.matching_delay.max_rate(load.sub_count());
            assert!(load.in_rate <= max + 1e-9);
        }
    }

    #[test]
    fn infeasible_input_fails() {
        let inp = input(100, 2, 1_000.0); // tiny brokers
        assert!(bin_packing(&inp).is_err());
        assert!(fbf(&inp, 0).is_err());
    }

    #[test]
    fn no_subscriptions_is_trivially_empty() {
        let inp = input(0, 3, 1e6);
        let alloc = bin_packing(&inp).unwrap();
        assert_eq!(alloc.broker_count(), 0);
    }

    #[test]
    fn units_from_input_builds_one_unit_per_subscription() {
        let inp = input(9, 1, 1e9);
        let units = units_from_input(&inp);
        assert_eq!(units.len(), 9);
        assert!(units.iter().all(|u| u.sub_count() == 1));
    }
}
