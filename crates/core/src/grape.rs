//! GRAPE — publisher relocation on the constructed overlay (paper §V,
//! after Phase 3; algorithm from Cheung & Jacobsen's prior work [5]).
//!
//! After the tree is built with publishers at the root, GRAPE moves each
//! publisher to the broker that minimizes a priority-weighted mix of
//!
//! * **total broker message rate** — the expected number of overlay-link
//!   crossings per second for that publisher's publications, and
//! * **average delivery delay** — the interest-weighted mean hop count
//!   from the candidate broker to the subscribers' brokers,
//!
//! both estimated from the same bit-vector profiles Phase 1 gathered
//! (which publications of this publisher each broker's local
//! subscriptions sink).

use crate::model::AllocError;
use crate::overlay::Overlay;
use crate::pipeline::CancelToken;
use greenps_profile::{fraction_of, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId};
use std::collections::BTreeMap;

/// GRAPE configuration.
#[derive(Debug, Clone, Copy)]
pub struct GrapeConfig {
    /// Priority `P ∈ [0, 1]`: 1.0 minimizes total message rate, 0.0
    /// minimizes average delivery delay; values between trade off the
    /// normalized objectives.
    pub priority: f64,
}

impl GrapeConfig {
    /// Pure load minimization (the paper's green objective).
    pub fn minimize_load() -> Self {
        Self { priority: 1.0 }
    }

    /// Pure delivery-delay minimization.
    pub fn minimize_delay() -> Self {
        Self { priority: 0.0 }
    }
}

impl Default for GrapeConfig {
    fn default() -> Self {
        Self::minimize_load()
    }
}

/// A tree of brokers with per-broker *local* interest profiles — the
/// view GRAPE needs. Built from an [`Overlay`] or from any deployed
/// topology (for the publisher-relocation-only experiment E6).
#[derive(Debug, Clone)]
pub struct InterestTree {
    brokers: Vec<BrokerId>,
    adjacency: Vec<Vec<usize>>,
    local: Vec<SubscriptionProfile>,
}

impl InterestTree {
    /// Builds an interest tree from explicit edges and local profiles.
    ///
    /// # Panics
    /// Panics if an edge references an unknown broker.
    pub fn new(
        brokers: Vec<(BrokerId, SubscriptionProfile)>,
        edges: &[(BrokerId, BrokerId)],
    ) -> Self {
        let ids: Vec<BrokerId> = brokers.iter().map(|(b, _)| *b).collect();
        let index: BTreeMap<BrokerId, usize> =
            ids.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut adjacency = vec![Vec::new(); ids.len()];
        for &(a, b) in edges {
            let (i, j) = (index[&a], index[&b]);
            adjacency[i].push(j);
            adjacency[j].push(i);
        }
        let local = brokers.into_iter().map(|(_, p)| p).collect();
        Self {
            brokers: ids,
            adjacency,
            local,
        }
    }

    /// Builds the interest tree of an overlay (locals = hosted units).
    pub fn from_overlay(overlay: &Overlay) -> Self {
        // The never-token cannot trip, so the cancellable path cannot
        // return `Err`; the empty-tree arm is unreachable but total.
        Self::from_overlay_cancellable(overlay, &CancelToken::never())
            .unwrap_or_else(|_| Self::new(Vec::new(), &[]))
    }

    /// [`InterestTree::from_overlay`] with a cancellation token: the
    /// per-broker unit-union scan polls it once per overlay node.
    ///
    /// # Errors
    /// [`AllocError::Cancelled`] when the token trips mid-build.
    pub(crate) fn from_overlay_cancellable(
        overlay: &Overlay,
        cancel: &CancelToken,
    ) -> Result<Self, AllocError> {
        let mut brokers: Vec<(BrokerId, SubscriptionProfile)> =
            Vec::with_capacity(overlay.broker_count());
        for n in overlay.nodes() {
            if cancel.is_cancelled_hot() {
                return Err(AllocError::Cancelled);
            }
            let mut local = SubscriptionProfile::new();
            for u in &n.units {
                local.or_assign(&u.profile);
            }
            brokers.push((n.broker, local));
        }
        let edges: Vec<(BrokerId, BrokerId)> = overlay.edges().collect();
        Ok(Self::new(brokers, &edges))
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// True when the tree has no brokers.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Per-broker interest fraction for one publisher: the share of the
    /// publisher's publications the broker's local subscriptions sink.
    fn fractions(&self, adv: AdvId, publishers: &PublisherTable) -> Vec<f64> {
        let last = publishers
            .get(adv)
            .map(|p| p.last_msg_id)
            .unwrap_or_default();
        self.local
            .iter()
            .map(|p| p.vector(adv).map(|v| fraction_of(v, last)).unwrap_or(0.0))
            .collect()
    }

    /// Expected link crossings per publication when the publisher sits
    /// at `root_idx`: a DFS computing, for each downstream edge, the
    /// fraction of publications any broker beyond it sinks (union of the
    /// subtree's bit vectors).
    fn load_cost(&self, adv: AdvId, root_idx: usize, publishers: &PublisherTable) -> f64 {
        let last = publishers
            .get(adv)
            .map(|p| p.last_msg_id)
            .unwrap_or_default();
        // Post-order union of subtree vectors, rooted at root_idx.
        fn rec(
            tree: &InterestTree,
            adv: AdvId,
            node: usize,
            parent: Option<usize>,
            last: greenps_pubsub::ids::MsgId,
            total: &mut f64,
        ) -> Option<greenps_profile::ShiftingBitVector> {
            let mut union = tree.local[node].vector(adv).cloned();
            for &next in &tree.adjacency[node] {
                if Some(next) == parent {
                    continue;
                }
                let sub = rec(tree, adv, next, Some(node), last, total);
                if let Some(sv) = sub {
                    // Edge node→next carries the subtree's interest.
                    *total += fraction_of(&sv, last);
                    match &mut union {
                        Some(u) => u.or_assign(&sv),
                        None => union = Some(sv),
                    }
                }
            }
            union
        }
        let mut total = 0.0;
        rec(self, adv, root_idx, None, last, &mut total);
        total
    }

    /// Interest-weighted mean hop distance from `root_idx` to every
    /// interested broker.
    fn delay_cost(&self, fractions: &[f64], root_idx: usize) -> f64 {
        // BFS distances.
        let mut dist = vec![usize::MAX; self.len()];
        let mut q = std::collections::VecDeque::new();
        dist[root_idx] = 0;
        q.push_back(root_idx);
        while let Some(n) = q.pop_front() {
            for &m in &self.adjacency[n] {
                if dist[m] == usize::MAX {
                    dist[m] = dist[n] + 1;
                    q.push_back(m);
                }
            }
        }
        let weight: f64 = fractions.iter().sum();
        if weight == 0.0 {
            return 0.0;
        }
        fractions
            .iter()
            .zip(&dist)
            .map(|(f, &d)| f * d as f64)
            .sum::<f64>()
            / weight
    }
}

/// Chooses the best broker for one publisher.
pub fn place_publisher(
    tree: &InterestTree,
    adv: AdvId,
    publishers: &PublisherTable,
    config: GrapeConfig,
) -> Option<BrokerId> {
    if tree.is_empty() {
        return None;
    }
    let fractions = tree.fractions(adv, publishers);
    let loads: Vec<f64> = (0..tree.len())
        .map(|i| tree.load_cost(adv, i, publishers))
        .collect();
    let delays: Vec<f64> = (0..tree.len())
        .map(|i| tree.delay_cost(&fractions, i))
        .collect();
    let max_load = loads.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let max_delay = delays.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let p = config.priority.clamp(0.0, 1.0);
    let best = (0..tree.len()).min_by(|&i, &j| {
        let si = p * loads[i] / max_load + (1.0 - p) * delays[i] / max_delay;
        let sj = p * loads[j] / max_load + (1.0 - p) * delays[j] / max_delay;
        si.total_cmp(&sj)
            .then(tree.brokers[i].cmp(&tree.brokers[j]))
    })?;
    Some(tree.brokers[best])
}

/// Places every publisher in the table onto the tree.
pub fn place_publishers(
    tree: &InterestTree,
    publishers: &PublisherTable,
    config: GrapeConfig,
) -> BTreeMap<AdvId, BrokerId> {
    // Never-token: `Err` is unreachable, the empty map is a total
    // fallback.
    place_publishers_cancellable(tree, publishers, config, &CancelToken::never())
        .unwrap_or_default()
}

/// [`place_publishers`] with a cancellation token, polled once per
/// publisher — each publisher's placement walks the whole tree, so one
/// poll per publisher bounds the stop latency to a single relocation.
///
/// # Errors
/// [`AllocError::Cancelled`] when the token trips mid-placement.
pub(crate) fn place_publishers_cancellable(
    tree: &InterestTree,
    publishers: &PublisherTable,
    config: GrapeConfig,
    cancel: &CancelToken,
) -> Result<BTreeMap<AdvId, BrokerId>, AllocError> {
    let mut homes = BTreeMap::new();
    for p in publishers.iter() {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        if let Some(b) = place_publisher(tree, p.adv_id, publishers, config) {
            homes.insert(p.adv_id, b);
        }
    }
    Ok(homes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::MsgId;

    fn profile(adv: u64, ids: &[u64]) -> SubscriptionProfile {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &i in ids {
            v.record(i);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(adv), v);
        p
    }

    fn publishers() -> PublisherTable {
        [PublisherProfile::new(
            AdvId::new(1),
            10.0,
            10_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect()
    }

    /// Chain B0 - B1 - B2 with all interest at B2: GRAPE moves the
    /// publisher to B2.
    #[test]
    fn publisher_moves_to_interest() {
        let all: Vec<u64> = (0..50).collect();
        let tree = InterestTree::new(
            vec![
                (BrokerId::new(0), SubscriptionProfile::new()),
                (BrokerId::new(1), SubscriptionProfile::new()),
                (BrokerId::new(2), profile(1, &all)),
            ],
            &[
                (BrokerId::new(0), BrokerId::new(1)),
                (BrokerId::new(1), BrokerId::new(2)),
            ],
        );
        for cfg in [GrapeConfig::minimize_load(), GrapeConfig::minimize_delay()] {
            assert_eq!(
                place_publisher(&tree, AdvId::new(1), &publishers(), cfg),
                Some(BrokerId::new(2))
            );
        }
    }

    /// Interest spread over the leaves of a star: delay-minimizing
    /// placement picks the hub (mean 1 hop vs 5/3 from any leaf); with
    /// identical subscriptions everywhere the load objective ties and
    /// the smallest id wins.
    #[test]
    fn star_interest_prefers_hub_for_delay() {
        let ids: Vec<u64> = (0..40).collect();
        let tree = InterestTree::new(
            vec![
                (BrokerId::new(0), profile(1, &ids)),
                (BrokerId::new(1), SubscriptionProfile::new()), // hub
                (BrokerId::new(2), profile(1, &ids)),
                (BrokerId::new(3), profile(1, &ids)),
            ],
            &[
                (BrokerId::new(0), BrokerId::new(1)),
                (BrokerId::new(1), BrokerId::new(2)),
                (BrokerId::new(1), BrokerId::new(3)),
            ],
        );
        let by_delay = place_publisher(
            &tree,
            AdvId::new(1),
            &publishers(),
            GrapeConfig::minimize_delay(),
        )
        .unwrap();
        assert_eq!(by_delay, BrokerId::new(1), "hub minimizes mean hops");
        let by_load = place_publisher(
            &tree,
            AdvId::new(1),
            &publishers(),
            GrapeConfig::minimize_load(),
        )
        .unwrap();
        assert_eq!(by_load, BrokerId::new(0), "flat load ties break by id");
    }

    /// §II-B: when every broker hosts the same subscription, relocating
    /// the publisher cannot reduce the message rate — every placement
    /// has equal load cost.
    #[test]
    fn identical_interest_everywhere_makes_load_flat() {
        let ids: Vec<u64> = (0..30).collect();
        let tree = InterestTree::new(
            vec![
                (BrokerId::new(0), profile(1, &ids)),
                (BrokerId::new(1), profile(1, &ids)),
                (BrokerId::new(2), profile(1, &ids)),
            ],
            &[
                (BrokerId::new(0), BrokerId::new(1)),
                (BrokerId::new(1), BrokerId::new(2)),
            ],
        );
        let pubs = publishers();
        let loads: Vec<f64> = (0..3)
            .map(|i| tree.load_cost(AdvId::new(1), i, &pubs))
            .collect();
        // Every edge always carries the traffic: cost 2×fraction for
        // every candidate.
        for l in &loads {
            assert!((l - loads[0]).abs() < 1e-12, "{loads:?}");
        }
    }

    #[test]
    fn no_interest_anywhere_picks_first_broker() {
        let tree = InterestTree::new(
            vec![
                (BrokerId::new(3), SubscriptionProfile::new()),
                (BrokerId::new(5), SubscriptionProfile::new()),
            ],
            &[(BrokerId::new(3), BrokerId::new(5))],
        );
        assert_eq!(
            place_publisher(&tree, AdvId::new(1), &publishers(), GrapeConfig::default()),
            Some(BrokerId::new(3))
        );
    }

    #[test]
    fn empty_tree_places_nothing() {
        let tree = InterestTree::new(vec![], &[]);
        assert!(tree.is_empty());
        assert_eq!(
            place_publisher(&tree, AdvId::new(1), &publishers(), GrapeConfig::default()),
            None
        );
        assert!(place_publishers(&tree, &publishers(), GrapeConfig::default()).is_empty());
    }

    #[test]
    fn place_publishers_covers_all_advs() {
        let ids: Vec<u64> = (0..10).collect();
        let tree = InterestTree::new(
            vec![
                (BrokerId::new(0), profile(1, &ids)),
                (BrokerId::new(1), profile(2, &ids)),
            ],
            &[(BrokerId::new(0), BrokerId::new(1))],
        );
        let pubs: PublisherTable = [
            PublisherProfile::new(AdvId::new(1), 1.0, 100.0, MsgId::new(99)),
            PublisherProfile::new(AdvId::new(2), 1.0, 100.0, MsgId::new(99)),
        ]
        .into_iter()
        .collect();
        let placed = place_publishers(&tree, &pubs, GrapeConfig::minimize_load());
        assert_eq!(placed[&AdvId::new(1)], BrokerId::new(0));
        assert_eq!(placed[&AdvId::new(2)], BrokerId::new(1));
    }
}
