//! PAIRWISE-K and PAIRWISE-N — the related-work baselines derived from
//! Riabov et al.'s pairwise clustering (paper §VI).
//!
//! The original pairwise algorithm clusters subscriptions bottom-up by
//! repeatedly merging the closest pair (XOR metric) until a *given*
//! number of clusters remains; it neither respects broker resource
//! constraints nor builds an overlay. Following the paper, we extend it
//! to use bit vectors and to assign the finished clusters to brokers:
//!
//! * **PAIRWISE-K** — the cluster count is set to the number of clusters
//!   CRAM-XOR computed for the same input; clusters are then assigned to
//!   *random* brokers.
//! * **PAIRWISE-N** — the cluster count equals the number of brokers;
//!   each cluster is assigned to one broker.
//!
//! Assignments ignore capacity on purpose: the baselines have no notion
//! of resource awareness, and the evaluation shows what that costs.
//!
//! The quadratic initial partner scan runs on the parallel closeness
//! engine ([`crate::engine`]): slots are sharded across worker threads
//! against a frozen snapshot, and the agglomeration loop serves repeat
//! pair closenesses from a [`PairCache`] keyed by slot index. Results
//! are bit-identical to the sequential scan for any worker count, so
//! the thread count is chosen automatically.

use crate::engine::{available_threads, shard_map, CacheConfig, PairCache};
use crate::model::{AllocError, Allocation, AllocationInput, BrokerLoad, Unit};
use crate::pipeline::CancelToken;
use crate::sorting::units_from_input;
use greenps_profile::{ClosenessMetric, PublisherTable};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

/// Result of a pairwise run: the allocation plus the cluster count used.
#[derive(Debug, Clone)]
pub struct PairwiseResult {
    /// Cluster-to-broker assignment (capacity **not** guaranteed).
    pub allocation: Allocation,
    /// Number of clusters produced.
    pub clusters: usize,
}

/// Agglomeratively clusters units down to at most `k` clusters using the
/// XOR closeness metric, with GIF-style grouping of equal profiles as a
/// starting point (the bit-vector extension the paper grants the
/// baselines).
fn cluster_to_k(
    mut units: Vec<Unit>,
    k: usize,
    cancel: &CancelToken,
) -> Result<Vec<Unit>, AllocError> {
    if k == 0 {
        return Ok(units);
    }
    // Merge equal profiles first — equivalent free wins.
    units.sort_by(|a, b| a.subs.first().cmp(&b.subs.first()));
    let mut clusters: Vec<Option<Unit>> = Vec::with_capacity(units.len());
    'outer: for u in units {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        for c in clusters.iter_mut().flatten() {
            if c.profile == u.profile {
                *c = c.merge(&u);
                continue 'outer;
            }
        }
        clusters.push(Some(u));
    }

    let metric = ClosenessMetric::Xor;
    // Closest-partner bookkeeping, recomputed on merge. The scan reads
    // a frozen cache snapshot and reports what it had to compute, so
    // the initial sharded pass is order-independent (see crate::engine).
    let mut live = clusters.iter().filter(|c| c.is_some()).count();
    let mut partner: Vec<Option<(usize, f64)>> = vec![None; clusters.len()];
    let mut cache: PairCache<usize> = PairCache::with_config(CacheConfig::default());
    struct Scan {
        best: Option<(usize, f64)>,
        computed: Vec<(usize, f64)>,
    }
    let scan = |clusters: &[Option<Unit>], cache: &PairCache<usize>, i: usize| -> Scan {
        let mut out = Scan {
            best: None,
            computed: Vec::new(),
        };
        let Some(me) = clusters.get(i).and_then(Option::as_ref) else {
            return out;
        };
        for (j, c) in clusters.iter().enumerate() {
            if i == j {
                continue;
            }
            let Some(c) = c else { continue };
            let cl = match cache.get(i, j) {
                Some(cl) => cl,
                None => {
                    let cl = metric.closeness(&me.profile, &c.profile);
                    out.computed.push((j, cl));
                    cl
                }
            };
            match out.best {
                Some((_, bc)) if bc >= cl => {}
                _ => out.best = Some((j, cl)),
            }
        }
        out
    };
    let idx: Vec<usize> = (0..clusters.len()).collect();
    let outcomes = shard_map(&idx, available_threads().min(8), |&i| {
        scan(&clusters, &cache, i)
    });
    for (i, s) in outcomes.into_iter().enumerate() {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        partner[i] = s.best;
        for (j, cl) in s.computed {
            cache.insert(i, j, cl);
        }
    }
    while live > k {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        let Some((i, j, _)) = partner
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|(j, c)| (i, j, c)))
            .filter(|&(i, j, _)| clusters[i].is_some() && clusters[j].is_some())
            .max_by(|a, b| a.2.total_cmp(&b.2))
        else {
            break;
        };
        let (Some(ci), Some(cj)) = (clusters[i].as_ref(), clusters[j].as_ref()) else {
            break;
        };
        let merged = ci.merge(cj);
        clusters[i] = Some(merged);
        clusters[j] = None;
        partner[j] = None;
        live -= 1;
        // Slot i's profile changed and slot j is gone: every cached
        // closeness touching either is stale.
        cache.invalidate(i);
        cache.invalidate(j);
        // Refresh partners pointing at i or j, and i itself; untouched
        // pairs are served from the cache.
        for idx in 0..clusters.len() {
            if clusters[idx].is_none() {
                continue;
            }
            let needs = idx == i
                || matches!(partner[idx], Some((p, _)) if p == i || p == j)
                || partner[idx].is_none();
            if needs {
                let s = scan(&clusters, &cache, idx);
                partner[idx] = s.best;
                for (p, cl) in s.computed {
                    cache.insert(idx, p, cl);
                }
            }
        }
    }
    Ok(clusters.into_iter().flatten().collect())
}

/// Assigns clusters to brokers, ignoring capacity.
fn assign(
    input: &AllocationInput,
    clusters: Vec<Unit>,
    publishers: &PublisherTable,
    one_per_broker: bool,
    rng: &mut StdRng,
    cancel: &CancelToken,
) -> Result<Allocation, AllocError> {
    let mut broker_ids: Vec<_> = input.brokers.iter().map(|b| b.id).collect();
    broker_ids.shuffle(rng);
    // One `BrokerLoad` per distinct broker at most.
    let mut loads: Vec<BrokerLoad> = Vec::with_capacity(broker_ids.len());
    for (i, unit) in clusters.into_iter().enumerate() {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        let broker = if one_per_broker {
            broker_ids[i % broker_ids.len()]
        } else {
            broker_ids[rng.gen_range(0..broker_ids.len())]
        };
        match loads.iter_mut().find(|l| l.broker == broker) {
            Some(l) => {
                l.union_profile.or_assign(&unit.profile);
                l.out_bw_used += unit.out_bandwidth;
                let input_load = l.union_profile.estimate_load(publishers);
                l.in_rate = input_load.rate;
                l.in_bandwidth = input_load.bandwidth;
                l.units.push(unit);
            }
            None => {
                let input_load = unit.profile.estimate_load(publishers);
                loads.push(BrokerLoad {
                    broker,
                    union_profile: unit.profile.clone(),
                    out_bw_used: unit.out_bandwidth,
                    in_rate: input_load.rate,
                    in_bandwidth: input_load.bandwidth,
                    units: vec![unit],
                });
            }
        }
    }
    loads.sort_by_key(|l| l.broker);
    Ok(Allocation { loads })
}

/// PAIRWISE-K: cluster to `k` clusters (the count computed by CRAM-XOR),
/// then assign clusters to random brokers. The clustering and
/// assignment loops poll `cancel` once per iteration and stop with
/// [`AllocError::Cancelled`].
///
/// # Errors
/// [`AllocError::Cancelled`] when the token trips mid-run.
pub fn pairwise_k(
    input: &AllocationInput,
    k: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<PairwiseResult, AllocError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = cluster_to_k(units_from_input(input), k.max(1), cancel)?;
    let n = clusters.len();
    Ok(PairwiseResult {
        allocation: assign(input, clusters, &input.publishers, false, &mut rng, cancel)?,
        clusters: n,
    })
}

/// PAIRWISE-N: cluster to one cluster per broker and assign each cluster
/// to a broker. Polls `cancel` like [`pairwise_k`].
///
/// # Errors
/// [`AllocError::Cancelled`] when the token trips mid-run.
pub fn pairwise_n(
    input: &AllocationInput,
    seed: u64,
    cancel: &CancelToken,
) -> Result<PairwiseResult, AllocError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = cluster_to_k(units_from_input(input), input.brokers.len().max(1), cancel)?;
    let n = clusters.len();
    Ok(PairwiseResult {
        allocation: assign(input, clusters, &input.publishers, true, &mut rng, cancel)?,
        clusters: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use greenps_profile::{PublisherProfile, ShiftingBitVector, SubscriptionProfile};
    use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
    use greenps_pubsub::Filter;

    fn input(groups: u64, per_group: u64, brokers: u64) -> AllocationInput {
        let publishers: PublisherTable = [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect();
        let subscriptions = (0..groups * per_group)
            .map(|i| {
                let g = i % groups;
                let mut v = ShiftingBitVector::starting_at(100, 0);
                for id in g * 10..g * 10 + 8 {
                    v.record(id);
                }
                let mut p = SubscriptionProfile::with_capacity(100);
                p.insert_vector(AdvId::new(1), v);
                SubscriptionEntry::new(SubId::new(i), Filter::new(), p)
            })
            .collect();
        AllocationInput {
            brokers: (0..brokers)
                .map(|i| {
                    BrokerSpec::new(
                        BrokerId::new(i),
                        format!("b{i}"),
                        LinearFn::new(0.0001, 0.0),
                        1e9,
                    )
                })
                .collect(),
            subscriptions,
            publishers,
        }
    }

    #[test]
    fn clusters_to_requested_count() {
        let inp = input(6, 5, 10);
        let r = pairwise_k(&inp, 3, 1, &CancelToken::never()).unwrap();
        assert_eq!(r.clusters, 3);
        assert_eq!(r.allocation.sub_count(), 30);
    }

    #[test]
    fn equal_profiles_merge_for_free() {
        let inp = input(4, 10, 10);
        // 4 distinct profiles → asking for 4 clusters needs no lossy merges
        let r = pairwise_k(&inp, 4, 1, &CancelToken::never()).unwrap();
        assert_eq!(r.clusters, 4);
        for load in &r.allocation.loads {
            for u in &load.units {
                assert_eq!(u.profile.count_ones(), 8, "groups stayed pure");
            }
        }
    }

    #[test]
    fn pairwise_n_spreads_one_cluster_per_broker() {
        let inp = input(8, 4, 8);
        let r = pairwise_n(&inp, 2, &CancelToken::never()).unwrap();
        assert_eq!(r.clusters, 8);
        assert_eq!(r.allocation.broker_count(), 8);
        for load in &r.allocation.loads {
            assert_eq!(load.units.len(), 1);
        }
    }

    #[test]
    fn k_larger_than_distinct_profiles_is_fine() {
        let inp = input(2, 3, 4);
        let r = pairwise_k(&inp, 100, 3, &CancelToken::never()).unwrap();
        assert_eq!(r.clusters, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let inp = input(5, 4, 6);
        let a = pairwise_k(&inp, 3, 9, &CancelToken::never()).unwrap();
        let b = pairwise_k(&inp, 3, 9, &CancelToken::never()).unwrap();
        let shape = |r: &PairwiseResult| {
            r.allocation
                .loads
                .iter()
                .map(|l| (l.broker, l.sub_count()))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn xor_merges_most_similar_groups_first() {
        // Two groups overlapping heavily (ids 0..8 vs 2..10) and one far
        // group (50..58): with k=2, the overlapping groups merge.
        let publishers: PublisherTable = [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect();
        let mk = |id: u64, range: std::ops::Range<u64>| {
            let mut v = ShiftingBitVector::starting_at(100, 0);
            for x in range {
                v.record(x);
            }
            let mut p = SubscriptionProfile::with_capacity(100);
            p.insert_vector(AdvId::new(1), v);
            SubscriptionEntry::new(SubId::new(id), Filter::new(), p)
        };
        let inp = AllocationInput {
            brokers: (0..4)
                .map(|i| {
                    BrokerSpec::new(
                        BrokerId::new(i),
                        format!("b{i}"),
                        LinearFn::new(0.0001, 0.0),
                        1e9,
                    )
                })
                .collect(),
            subscriptions: vec![mk(0, 0..8), mk(1, 2..10), mk(2, 50..58)],
            publishers,
        };
        let r = pairwise_k(&inp, 2, 0, &CancelToken::never()).unwrap();
        assert_eq!(r.clusters, 2);
        let sizes: Vec<usize> = r
            .allocation
            .loads
            .iter()
            .flat_map(|l| l.units.iter().map(|u| u.sub_count()))
            .collect();
        assert!(sizes.contains(&2), "overlapping pair merged: {sizes:?}");
    }
}
