//! Phase 3: recursive broker overlay construction (paper §V).
//!
//! Each broker allocated by Phase 2 is mapped to a "virtual
//! subscription" — the OR-aggregate of the bit vectors it serves, with a
//! bandwidth requirement equal to its *input* bandwidth — and the
//! Phase-2 allocator is invoked recursively on the remaining broker
//! pool, building the tree layer by layer until a single root remains.
//! Publishers initially connect to the root (GRAPE then relocates them).
//!
//! Three optimizations, applied after each layer allocation (§V-A/B/C):
//!
//! 1. **Eliminate pure forwarders** — a parent with a single child just
//!    adds a hop; it is deallocated and the child promoted.
//! 2. **Takeover children roles** — a parent with spare capacity absorbs
//!    its children directly, least-utilized child first.
//! 3. **Best-fit broker replacement** — each allocated broker is swapped
//!    for the smallest-capacity pool broker that still fits its load.

use crate::cram::{CramBuilder, CramConfig};
use crate::model::{AllocError, Allocation, AllocationInput, BrokerSpec, Unit};
use crate::pipeline::CancelToken;
use crate::sorting::bin_packing_units;
use greenps_profile::{PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{BrokerId, SubId};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Which Phase-2 algorithm drives allocation — reused verbatim for the
/// recursive overlay layers, keeping the whole scheme consistent
/// (paper §V: "if CRAM is used to allocate subscriptions to brokers,
/// then CRAM is also used to build the broker overlay").
#[derive(Debug, Clone, Copy)]
pub enum AllocatorKind {
    /// Fastest Broker First with a shuffle seed.
    Fbf {
        /// Seed for the random subscription draw order.
        seed: u64,
    },
    /// BIN PACKING (first-fit decreasing).
    BinPacking,
    /// CRAM with a metric and optimization switches.
    Cram(CramConfig),
}

impl AllocatorKind {
    /// Runs the allocator over prebuilt units, threading `cancel` into
    /// its packing/merge loops.
    ///
    /// # Errors
    /// Allocator failures, or [`AllocError::Cancelled`] when the token
    /// trips mid-run.
    pub fn allocate_units(
        &self,
        brokers: &[BrokerSpec],
        publishers: &PublisherTable,
        units: Vec<Unit>,
        cancel: &CancelToken,
    ) -> Result<Allocation, AllocError> {
        match self {
            AllocatorKind::Fbf { seed } => {
                let mut units = units;
                let mut rng = StdRng::seed_from_u64(*seed);
                units.shuffle(&mut rng);
                crate::capacity::pack_all(brokers, publishers, units, cancel)
            }
            AllocatorKind::BinPacking => bin_packing_units(brokers, publishers, units, cancel),
            AllocatorKind::Cram(cfg) => {
                let input = AllocationInput {
                    brokers: brokers.to_vec(),
                    subscriptions: Vec::new(),
                    publishers: publishers.clone(),
                };
                CramBuilder::from_config(*cfg)
                    .cancel_token(cancel)
                    .run_units(&input, units)
                    .map(|(a, _)| a)
            }
        }
    }
}

/// Overlay-construction switches (all on by default, toggleable for the
/// E9 ablation).
#[derive(Debug, Clone, Copy)]
pub struct OverlayConfig {
    /// The Phase-2 allocator reused for each layer.
    pub allocator: AllocatorKind,
    /// §V-A: eliminate pure forwarding brokers.
    pub eliminate_pure_forwarders: bool,
    /// §V-B: parents take over children's roles.
    pub takeover_children: bool,
    /// §V-C: best-fit broker replacement.
    pub best_fit_replacement: bool,
}

impl OverlayConfig {
    /// All optimizations enabled with the given allocator.
    pub fn new(allocator: AllocatorKind) -> Self {
        Self {
            allocator,
            eliminate_pure_forwarders: true,
            takeover_children: true,
            best_fit_replacement: true,
        }
    }
}

/// One broker in the constructed overlay tree.
#[derive(Debug, Clone)]
pub struct OverlayNode {
    /// The broker occupying this position.
    pub broker: BrokerId,
    /// Child brokers (empty for leaves).
    pub children: Vec<BrokerId>,
    /// Subscription units hosted locally.
    pub units: Vec<Unit>,
    /// Union of every profile in this broker's subtree — its interest.
    pub profile: SubscriptionProfile,
    /// Input bandwidth a parent must provide (bytes/s).
    pub in_bandwidth: f64,
    /// Input publication rate (msg/s).
    pub in_rate: f64,
    /// Output bandwidth responsibility: local copies + forwarding to
    /// children (bytes/s).
    pub out_bw_used: f64,
    /// Routing-table entries: local subscriptions + one per child.
    pub route_entries: usize,
}

impl OverlayNode {
    /// Local subscription count.
    pub fn local_sub_count(&self) -> usize {
        self.units.iter().map(Unit::sub_count).sum()
    }
}

/// The constructed broker overlay tree.
#[derive(Debug, Clone)]
pub struct Overlay {
    nodes: BTreeMap<BrokerId, OverlayNode>,
    root: BrokerId,
    /// Construction statistics for the ablation experiments.
    pub stats: OverlayStats,
}

/// Counters describing one overlay construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Tree layers built (leaf layer counts as 1).
    pub layers: usize,
    /// Pure forwarders eliminated (optimization 1).
    pub pure_forwarders_removed: usize,
    /// Children absorbed by parents (optimization 2).
    pub takeovers: usize,
    /// Best-fit broker swaps (optimization 3).
    pub best_fit_swaps: usize,
    /// True when a layer could not shrink and a root was forced (the
    /// paper assumes enough headroom for this never to happen).
    pub forced_root: bool,
}

impl Overlay {
    /// Reassembles an overlay from its parts (checkpoint restore),
    /// validating the tree invariant without panicking.
    ///
    /// # Errors
    /// Fails when `root` is missing from `nodes`, a child edge dangles,
    /// or the children edges do not form a tree rooted at `root`.
    pub fn from_parts(
        nodes: BTreeMap<BrokerId, OverlayNode>,
        root: BrokerId,
        stats: OverlayStats,
    ) -> Result<Overlay, OverlayError> {
        if !nodes.contains_key(&root) {
            return Err(OverlayError::Malformed(format!(
                "root {root} is not among the nodes"
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                return Err(OverlayError::Malformed(format!(
                    "broker {b} is reached twice — not a tree"
                )));
            }
            match nodes.get(&b) {
                Some(node) => stack.extend(node.children.iter().copied()),
                None => {
                    return Err(OverlayError::Malformed(format!("dangling child {b}")));
                }
            }
        }
        if seen.len() != nodes.len() {
            return Err(OverlayError::Malformed(format!(
                "{} of {} nodes unreachable from the root",
                nodes.len() - seen.len(),
                nodes.len()
            )));
        }
        Ok(Overlay { nodes, root, stats })
    }

    /// The root broker, where publishers initially connect.
    pub fn root(&self) -> BrokerId {
        self.root
    }

    /// Looks up a node.
    pub fn node(&self, id: BrokerId) -> Option<&OverlayNode> {
        self.nodes.get(&id)
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &OverlayNode> {
        self.nodes.values()
    }

    /// Number of allocated brokers.
    pub fn broker_count(&self) -> usize {
        self.nodes.len()
    }

    /// Parent→child edges.
    pub fn edges(&self) -> impl Iterator<Item = (BrokerId, BrokerId)> + '_ {
        self.nodes
            .values()
            .flat_map(|n| n.children.iter().map(move |&c| (n.broker, c)))
    }

    /// The subscription-to-broker placement encoded in the leaves.
    pub fn subscription_homes(&self) -> BTreeMap<SubId, BrokerId> {
        let mut map = BTreeMap::new();
        for n in self.nodes.values() {
            for u in &n.units {
                for &s in &u.subs {
                    map.insert(s, n.broker);
                }
            }
        }
        map
    }

    /// Depth of the tree: 1 for a lone root (hop count upper bound for
    /// a publication entering at the root).
    pub fn depth(&self) -> usize {
        fn rec(o: &Overlay, b: BrokerId) -> usize {
            1 + o.nodes[&b]
                .children
                .iter()
                .map(|&c| rec(o, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, self.root)
    }

    /// Largest number of children on any broker.
    pub fn max_fanout(&self) -> usize {
        self.nodes
            .values()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Total output bandwidth responsibility across all brokers
    /// (bytes/s) — the planner's estimate of the system's forwarding
    /// work, before simulation confirms it.
    pub fn total_out_bandwidth(&self) -> f64 {
        self.nodes.values().map(|n| n.out_bw_used).sum()
    }

    /// Renders the overlay as a Graphviz DOT digraph (for
    /// documentation and debugging).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph overlay {\n  rankdir=TB;\n");
        for n in self.nodes.values() {
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{}\\n{} subs, {:.0} B/s\"{}];",
                n.broker,
                n.broker,
                n.local_sub_count(),
                n.out_bw_used,
                if n.broker == self.root {
                    ", shape=doublecircle"
                } else {
                    ""
                }
            );
        }
        for (a, b) in self.edges() {
            let _ = writeln!(out, "  \"{a}\" -> \"{b}\";");
        }
        out.push_str("}\n");
        out
    }

    /// Checks the tree invariant: every node reachable from the root
    /// exactly once.
    ///
    /// # Panics
    /// Panics when the overlay is not a tree.
    pub fn check_tree(&self) {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![self.root];
        while let Some(b) = stack.pop() {
            assert!(seen.insert(b), "broker {b} reached twice");
            assert!(self.nodes.contains_key(&b), "dangling child {b}");
            if let Some(node) = self.nodes.get(&b) {
                stack.extend(node.children.iter().copied());
            }
        }
        assert_eq!(seen.len(), self.nodes.len(), "unreachable overlay nodes");
    }
}

impl fmt::Display for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(o: &Overlay, b: BrokerId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let n = &o.nodes[&b];
            writeln!(
                f,
                "{}{} [{} subs, {:.0} B/s out]",
                "  ".repeat(depth),
                b,
                n.local_sub_count(),
                n.out_bw_used
            )?;
            for &c in &n.children {
                rec(o, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, self.root, 0, f)
    }
}

/// Synthetic sub-ids for virtual subscriptions encode the child broker.
const VIRT_BASE: u64 = 1 << 62;

fn virt_sub(b: BrokerId) -> SubId {
    SubId::new(VIRT_BASE + b.raw())
}

fn virt_broker(s: SubId) -> Option<BrokerId> {
    (s.raw() >= VIRT_BASE).then(|| BrokerId::new(s.raw() - VIRT_BASE))
}

/// Errors from overlay construction.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayError {
    /// A layer allocation failed outright.
    Alloc(AllocError),
    /// The Phase-2 allocation was empty (nothing to connect).
    EmptyAllocation,
    /// Externally supplied parts do not form a tree (checkpoint
    /// restore).
    Malformed(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::Alloc(e) => write!(f, "layer allocation failed: {e}"),
            OverlayError::EmptyAllocation => f.write_str("no brokers were allocated"),
            OverlayError::Malformed(why) => write!(f, "malformed overlay: {why}"),
        }
    }
}

impl std::error::Error for OverlayError {}

impl From<AllocError> for OverlayError {
    fn from(e: AllocError) -> Self {
        OverlayError::Alloc(e)
    }
}

/// Builds the overlay tree above a Phase-2 allocation.
///
/// # Errors
/// Fails when the leaf allocation is empty or a layer allocation fails
/// with no fallback.
pub fn build_overlay(
    input: &AllocationInput,
    leaf: &Allocation,
    config: &OverlayConfig,
) -> Result<Overlay, OverlayError> {
    build_overlay_cancellable(input, leaf, config, &CancelToken::never())
}

/// [`build_overlay`] with a cancellation token: the leaf scan and the
/// per-layer construction loop poll it, and each layer's allocator run
/// polls it internally. A tripped token surfaces as
/// [`OverlayError::Alloc`] of [`AllocError::Cancelled`] — unlike an
/// infeasible layer allocation, it does *not* fall back to the forced
/// root (a cancelled overlay must not silently degrade).
///
/// # Errors
/// As [`build_overlay`], plus the cancellation case above.
pub(crate) fn build_overlay_cancellable(
    input: &AllocationInput,
    leaf: &Allocation,
    config: &OverlayConfig,
    cancel: &CancelToken,
) -> Result<Overlay, OverlayError> {
    if leaf.loads.is_empty() {
        return Err(OverlayError::EmptyAllocation);
    }
    let mut stats = OverlayStats::default();
    let mut nodes: BTreeMap<BrokerId, OverlayNode> = BTreeMap::new();
    let specs: BTreeMap<BrokerId, &BrokerSpec> = input.brokers.iter().map(|b| (b.id, b)).collect();

    // Leaf layer from the Phase-2 allocation.
    let mut layer: Vec<BrokerId> = Vec::new();
    for load in &leaf.loads {
        if cancel.is_cancelled_hot() {
            return Err(OverlayError::Alloc(AllocError::Cancelled));
        }
        nodes.insert(
            load.broker,
            OverlayNode {
                broker: load.broker,
                children: Vec::new(),
                units: load.units.clone(),
                profile: load.union_profile.clone(),
                in_bandwidth: load.in_bandwidth,
                in_rate: load.in_rate,
                out_bw_used: load.out_bw_used,
                route_entries: load.sub_count(),
            },
        );
        layer.push(load.broker);
    }
    stats.layers = 1;

    // Remaining pool: brokers not yet part of the tree.
    let mut pool: Vec<BrokerSpec> = input
        .brokers
        .iter()
        .filter(|b| !nodes.contains_key(&b.id))
        .cloned()
        .collect();

    while layer.len() > 1 {
        if cancel.is_cancelled_hot() {
            return Err(OverlayError::Alloc(AllocError::Cancelled));
        }
        // Virtual subscriptions: one per layer node, bandwidth = the
        // node's input bandwidth.
        let units: Vec<Unit> = layer
            .iter()
            .map(|&b| {
                let n = &nodes[&b];
                Unit {
                    subs: vec![virt_sub(b)],
                    profile: n.profile.clone(),
                    out_bandwidth: n.in_bandwidth,
                }
            })
            .collect();

        let alloc = if pool.is_empty() {
            None
        } else {
            match config
                .allocator
                .allocate_units(&pool, &input.publishers, units, cancel)
            {
                Ok(a) => Some(a),
                // Cancellation aborts the overlay; any other failure
                // falls back to the forced root below.
                Err(AllocError::Cancelled) => {
                    return Err(OverlayError::Alloc(AllocError::Cancelled))
                }
                Err(_) => None,
            }
        };

        let alloc = match alloc {
            Some(a) if a.broker_count() < layer.len() => a,
            _ => {
                // Allocation failed or did not shrink the layer: close
                // the overlay with a single forced root.
                force_root(
                    &mut nodes,
                    &mut layer,
                    &specs,
                    &input.publishers,
                    &mut stats,
                );
                break;
            }
        };

        // Materialize parents.
        let mut next_layer: Vec<BrokerId> = Vec::new();
        for load in &alloc.loads {
            // CRAM may have merged several virtual subscriptions into
            // one unit — every synthetic sub id maps back to a child.
            let children: Vec<BrokerId> = load
                .units
                .iter()
                .flat_map(|u| u.subs.iter().copied().filter_map(virt_broker))
                .collect();
            if config.eliminate_pure_forwarders && children.len() == 1 {
                // Optimization 1: the would-be parent only forwards to a
                // single child — promote the child instead.
                stats.pure_forwarders_removed += 1;
                next_layer.push(children[0]);
                continue;
            }
            pool.retain(|b| b.id != load.broker);
            let input_load = load.union_profile.estimate_load(&input.publishers);
            nodes.insert(
                load.broker,
                OverlayNode {
                    broker: load.broker,
                    children,
                    units: Vec::new(),
                    profile: load.union_profile.clone(),
                    in_bandwidth: input_load.bandwidth,
                    in_rate: input_load.rate,
                    out_bw_used: load.out_bw_used,
                    route_entries: load.units.len(),
                },
            );
            next_layer.push(load.broker);
        }
        stats.layers += 1;

        if config.takeover_children {
            takeover_children(&mut nodes, &next_layer, &specs, &mut pool, &mut stats);
        }
        if config.best_fit_replacement {
            best_fit_swap(&mut nodes, &mut next_layer, &specs, &mut pool, &mut stats);
        }
        layer = next_layer;
    }

    let root = layer[0];
    let overlay = Overlay { nodes, root, stats };
    overlay.check_tree();
    Ok(overlay)
}

/// Fallback when a layer cannot shrink: promote the most capable node of
/// the current layer to root and attach the rest beneath it.
fn force_root(
    nodes: &mut BTreeMap<BrokerId, OverlayNode>,
    layer: &mut Vec<BrokerId>,
    specs: &BTreeMap<BrokerId, &BrokerSpec>,
    publishers: &PublisherTable,
    stats: &mut OverlayStats,
) {
    stats.forced_root = true;
    // An empty layer has nothing to promote; build() never passes one.
    let Some(&root) = layer.iter().max_by(|a, b| {
        let ca = specs[a].out_bandwidth - nodes[a].out_bw_used;
        let cb = specs[b].out_bandwidth - nodes[b].out_bw_used;
        ca.total_cmp(&cb)
    }) else {
        return;
    };
    let children: Vec<BrokerId> = layer.iter().copied().filter(|&b| b != root).collect();
    let mut profile = nodes[&root].profile.clone();
    let mut extra_bw = 0.0;
    for &c in &children {
        profile.or_assign(&nodes[&c].profile.clone());
        extra_bw += nodes[&c].in_bandwidth;
    }
    let input_load = profile.estimate_load(publishers);
    // The root was just drawn from `layer`, whose ids all live in `nodes`.
    if let Some(node) = nodes.get_mut(&root) {
        node.children.extend(children.iter().copied());
        node.profile = profile;
        node.in_bandwidth = input_load.bandwidth;
        node.in_rate = input_load.rate;
        node.out_bw_used += extra_bw;
        node.route_entries += children.len();
    }
    layer.clear();
    layer.push(root);
}

/// Optimization 2: each parent absorbs children it can serve directly,
/// in order of least-to-highest child utilization.
fn takeover_children(
    nodes: &mut BTreeMap<BrokerId, OverlayNode>,
    layer: &[BrokerId],
    specs: &BTreeMap<BrokerId, &BrokerSpec>,
    pool: &mut Vec<BrokerSpec>,
    stats: &mut OverlayStats,
) {
    for &p in layer {
        loop {
            let parent = &nodes[&p];
            let spec = specs[&p];
            // Least-utilized child first.
            let mut kids: Vec<BrokerId> = parent.children.clone();
            kids.sort_by(|a, b| nodes[a].out_bw_used.total_cmp(&nodes[b].out_bw_used));
            let mut absorbed = None;
            for c in kids {
                let child = &nodes[&c];
                let new_out = parent.out_bw_used - child.in_bandwidth + child.out_bw_used;
                let new_entries = parent.route_entries - 1 + child.route_entries;
                let rate_ok = parent.in_rate <= spec.matching_delay.max_rate(new_entries);
                if new_out < spec.out_bandwidth && rate_ok {
                    absorbed = Some((c, new_out));
                    break;
                }
            }
            let Some((c, new_out)) = absorbed else { break };
            // Both ids were read from `nodes` while picking `absorbed`.
            let Some(child) = nodes.remove(&c) else { break };
            let Some(parent) = nodes.get_mut(&p) else {
                break;
            };
            parent.children.retain(|&x| x != c);
            parent.children.extend(child.children.iter().copied());
            parent.units.extend(child.units);
            parent.out_bw_used = new_out;
            parent.route_entries = parent.route_entries - 1 + child.route_entries;
            // Interest profile unchanged: the parent already forwarded
            // everything the child's subtree wanted.
            pool.push(specs[&c].clone());
            stats.takeovers += 1;
        }
    }
}

/// Optimization 3: replace allocated brokers with best-fitting pool
/// brokers (smallest capacity that still satisfies the load).
fn best_fit_swap(
    nodes: &mut BTreeMap<BrokerId, OverlayNode>,
    layer: &mut [BrokerId],
    specs: &BTreeMap<BrokerId, &BrokerSpec>,
    pool: &mut Vec<BrokerSpec>,
    stats: &mut OverlayStats,
) {
    for slot in layer.iter_mut() {
        let b = *slot;
        let Some(node) = nodes.get(&b) else { continue };
        let current_cap = specs[&b].out_bandwidth;
        // Smallest pool broker that still fits.
        let candidate = pool
            .iter()
            .filter(|s| {
                s.out_bandwidth > node.out_bw_used
                    && s.out_bandwidth < current_cap
                    && node.in_rate <= s.matching_delay.max_rate(node.route_entries)
            })
            .min_by(|a, c| a.out_bandwidth.total_cmp(&c.out_bandwidth))
            .map(|s| s.id);
        let Some(new_id) = candidate else { continue };
        // Swap: the new broker takes over the node; the old broker
        // returns to the pool. `b` was confirmed present above.
        let Some(mut node) = nodes.remove(&b) else {
            continue;
        };
        node.broker = new_id;
        nodes.insert(new_id, node);
        pool.retain(|s| s.id != new_id);
        pool.push(specs[&b].clone());
        *slot = new_id;
        stats.best_fit_swaps += 1;
    }
}

/// Convenience: a trivial overlay for a single allocated broker.
pub fn single_broker_overlay(load: &crate::model::BrokerLoad) -> Overlay {
    let mut nodes = BTreeMap::new();
    nodes.insert(
        load.broker,
        OverlayNode {
            broker: load.broker,
            children: Vec::new(),
            units: load.units.clone(),
            profile: load.union_profile.clone(),
            in_bandwidth: load.in_bandwidth,
            in_rate: load.in_rate,
            out_bw_used: load.out_bw_used,
            route_entries: load.sub_count(),
        },
    );
    Overlay {
        nodes,
        root: load.broker,
        stats: OverlayStats {
            layers: 1,
            ..Default::default()
        },
    }
}

/// Used by `LinearFn` in doc headers; re-export for convenience.
pub use crate::model::LinearFn as MatchingDelay;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearFn, SubscriptionEntry};
    use crate::sorting::bin_packing;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{AdvId, MsgId};
    use greenps_pubsub::Filter;

    fn publishers() -> PublisherTable {
        [
            PublisherProfile::new(AdvId::new(1), 50.0, 50_000.0, MsgId::new(99)),
            PublisherProfile::new(AdvId::new(2), 50.0, 50_000.0, MsgId::new(99)),
        ]
        .into_iter()
        .collect()
    }

    fn entry(id: u64, adv: u64, ids: &[u64]) -> SubscriptionEntry {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &x in ids {
            v.record(x);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(adv), v);
        SubscriptionEntry::new(SubId::new(id), Filter::new(), p)
    }

    /// 2 interest groups × heavy subscriptions on small brokers →
    /// several leaves; big brokers above them.
    fn scenario() -> AllocationInput {
        let mut subscriptions = Vec::new();
        for i in 0..8 {
            subscriptions.push(entry(i, 1 + (i % 2), &(0..40).collect::<Vec<_>>()));
        }
        let brokers = (0..12)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0001, 0.0),
                    60_000.0,
                )
            })
            .collect();
        AllocationInput {
            brokers,
            subscriptions,
            publishers: publishers(),
        }
    }

    #[test]
    fn builds_a_tree_over_binpacking_leaves() {
        let input = scenario();
        let leaf = bin_packing(&input).unwrap();
        assert!(leaf.broker_count() > 1, "need multiple leaves");
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        overlay.check_tree();
        assert!(overlay.broker_count() >= leaf.broker_count());
        // Every subscription still has a home.
        assert_eq!(overlay.subscription_homes().len(), 8);
        // Root reaches everything.
        let edge_count = overlay.edges().count();
        assert_eq!(edge_count, overlay.broker_count() - 1, "tree edge count");
    }

    #[test]
    fn single_leaf_is_its_own_root() {
        let mut input = scenario();
        input.subscriptions.truncate(1);
        let leaf = bin_packing(&input).unwrap();
        assert_eq!(leaf.broker_count(), 1);
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        assert_eq!(overlay.broker_count(), 1);
        assert_eq!(overlay.root(), leaf.loads[0].broker);
        assert_eq!(overlay.stats.layers, 1);
    }

    #[test]
    fn empty_allocation_is_an_error() {
        let input = scenario();
        let empty = Allocation::default();
        assert!(matches!(
            build_overlay(
                &input,
                &empty,
                &OverlayConfig::new(AllocatorKind::BinPacking)
            ),
            Err(OverlayError::EmptyAllocation)
        ));
    }

    #[test]
    fn pure_forwarder_elimination_reduces_brokers() {
        let input = scenario();
        let leaf = bin_packing(&input).unwrap();
        let with = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        let mut cfg = OverlayConfig::new(AllocatorKind::BinPacking);
        cfg.eliminate_pure_forwarders = false;
        cfg.takeover_children = false;
        cfg.best_fit_replacement = false;
        let without = build_overlay(&input, &leaf, &cfg).unwrap();
        assert!(
            with.broker_count() <= without.broker_count(),
            "opts should not increase broker count: {} vs {}",
            with.broker_count(),
            without.broker_count()
        );
    }

    #[test]
    fn forced_root_when_pool_exhausted() {
        // Exactly as many brokers as the leaves need: no pool remains
        // for upper layers, so a leaf is promoted to root.
        let mut input = scenario();
        let leaf = bin_packing(&input).unwrap();
        let used: Vec<BrokerId> = leaf.broker_ids().collect();
        input.brokers.retain(|b| used.contains(&b.id));
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        assert!(overlay.stats.forced_root);
        overlay.check_tree();
        assert_eq!(overlay.broker_count(), leaf.broker_count());
    }

    #[test]
    fn cram_driven_overlay_works() {
        let input = scenario();
        let (leaf, _) = CramBuilder::from_config(CramConfig::default())
            .run(&input)
            .unwrap();
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::Cram(CramConfig::default())),
        )
        .unwrap();
        overlay.check_tree();
        assert_eq!(overlay.subscription_homes().len(), 8);
    }

    #[test]
    fn fbf_driven_overlay_works() {
        let input = scenario();
        let leaf = crate::sorting::fbf(&input, 3).unwrap();
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::Fbf { seed: 3 }),
        )
        .unwrap();
        overlay.check_tree();
    }

    #[test]
    fn display_prints_indented_tree() {
        let input = scenario();
        let leaf = bin_packing(&input).unwrap();
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        let s = overlay.to_string();
        assert!(s.contains("subs"));
        assert!(s.lines().count() == overlay.broker_count());
    }

    #[test]
    fn depth_and_fanout_accessors() {
        let input = scenario();
        let leaf = bin_packing(&input).unwrap();
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        let depth = overlay.depth();
        assert!(depth >= 1 && depth <= overlay.broker_count());
        assert!(overlay.max_fanout() < overlay.broker_count().max(2));
        assert!(overlay.total_out_bandwidth() > 0.0);
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let input = scenario();
        let leaf = bin_packing(&input).unwrap();
        let overlay = build_overlay(
            &input,
            &leaf,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        )
        .unwrap();
        let dot = overlay.to_dot();
        assert!(dot.starts_with("digraph overlay {"));
        assert!(dot.contains("doublecircle"), "root highlighted");
        assert_eq!(
            dot.matches(" -> ").count(),
            overlay.broker_count() - 1,
            "one edge per child"
        );
    }

    #[test]
    fn virt_sub_round_trip() {
        let b = BrokerId::new(42);
        assert_eq!(virt_broker(virt_sub(b)), Some(b));
        assert_eq!(virt_broker(SubId::new(42)), None);
    }
}
