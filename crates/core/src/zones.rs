//! Hierarchical zone sharding: allocation at 1M+ subscriptions with
//! bounded memory (DESIGN.md §12).
//!
//! One flat CRAM run over a million subscriptions materializes every
//! profile at once and clusters one giant pool. This module scales the
//! allocation phase by the scheme the scalable-aggregation literature
//! (Shi; Shafique — see PAPERS.md) converges on:
//!
//! 1. **Partition** subscriptions into zones — by an explicit locality
//!    tag on the workload or by deterministic publisher affinity
//!    ([`ZonePlan`], [`partition`]).
//! 2. **Per-zone CRAM**: each zone's pool is materialized through a
//!    [`StreamingGifBuilder`] and clustered independently over the full
//!    broker pool, a wave of zones at a time over
//!    [`crate::engine::shard_map`]. Only one wave of zone pools is
//!    resident, so peak RSS tracks the largest zone, not the workload.
//! 3. **Recursive cross-zone Phase 3**: every allocated broker of every
//!    zone becomes a *super-unit* (its union profile as the virtual
//!    subscription, its consumed bandwidth as the output requirement —
//!    [`super_units`]) and CRAM re-runs across all super-units against
//!    the real broker pool. Per-zone broker assignments are tentative;
//!    only the groupings survive, so the final allocation respects the
//!    actual pool capacities.
//!
//! With a single zone the recursive pass is skipped and the result is
//! bit-identical — allocation *and* stats — to a flat
//! [`CramBuilder::run`], which the `zoned_equivalence` proptests pin
//! down.

use crate::cram::{CramBuilder, CramConfig, CramStats};
use crate::engine::shard_map;
use crate::model::{AllocError, Allocation, AllocationInput, BrokerSpec, Unit};
use crate::pipeline::artifact::{
    allocation_from_json, allocation_to_json, arr_field, cram_stats_from_json, cram_stats_to_json,
    field, u64_field, unit_from_json, unit_to_json, usize_field,
};
use crate::pipeline::json::JsonValue;
use crate::pipeline::{
    Artifact, ArtifactError, CancelToken, Phase, PhaseKind, PipelineError, ReconfigContext,
};
use greenps_profile::{ClosenessMetric, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, SubId};
use greenps_telemetry::{Registry, Span};
use std::collections::{BTreeMap, BTreeSet};

/// How subscriptions map to zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZonePlan {
    /// Hash each subscription's dominant publisher (the advertisement
    /// contributing the most profile bits; ties break toward the lowest
    /// advertisement id) into `zones` buckets. Subscriptions that
    /// follow the same publisher land in the same zone, so per-zone
    /// pools keep the profile overlap CRAM feeds on.
    PublisherAffinity {
        /// Number of zones (≥ 1).
        zones: usize,
        /// Salt mixed into the bucket hash; the partition is a pure
        /// function of `(profiles, zones, seed)`.
        seed: u64,
    },
    /// Explicit locality tags (e.g. from a zoned scenario). Untagged
    /// subscriptions fall into zone 0; the zone count is
    /// `max tag + 1`.
    Tags(BTreeMap<SubId, u32>),
}

/// SplitMix64 — the standard 64-bit finalizer; deterministic and
/// seed-friendly, used only to spread affinity keys across zones.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The advertisement contributing the most bits to `profile` (ties
/// break toward the lowest id); `None` for an empty profile.
fn dominant_adv(profile: &SubscriptionProfile) -> Option<AdvId> {
    let mut best: Option<(usize, AdvId)> = None;
    for (adv, v) in profile.iter() {
        let ones = v.count_ones();
        let better = match best {
            None => true,
            Some((best_ones, _)) => ones > best_ones,
        };
        if better {
            best = Some((ones, adv));
        }
    }
    best.map(|(_, adv)| adv)
}

/// Splits `input`'s subscriptions into per-zone index lists (indices
/// into `input.subscriptions`, each list in input order), polling
/// `cancel` once per subscription.
///
/// Deterministic: the same input and plan always produce the same
/// partition, and every subscription lands in exactly one zone.
///
/// # Errors
/// [`AllocError::Cancelled`] when the token trips mid-scan.
pub fn partition(
    input: &AllocationInput,
    plan: &ZonePlan,
    cancel: &CancelToken,
) -> Result<Vec<Vec<usize>>, AllocError> {
    match plan {
        ZonePlan::PublisherAffinity { zones, seed } => {
            let zones = (*zones).max(1);
            let mut out = vec![Vec::new(); zones];
            for (i, sub) in input.subscriptions.iter().enumerate() {
                if cancel.is_cancelled_hot() {
                    return Err(AllocError::Cancelled);
                }
                let key = match dominant_adv(&sub.profile) {
                    Some(adv) => adv.raw(),
                    // Empty profiles have no affinity; spread by id.
                    None => !sub.id.raw(),
                };
                let z = (splitmix64(key ^ seed) % zones as u64) as usize;
                if let Some(bucket) = out.get_mut(z) {
                    bucket.push(i);
                }
            }
            Ok(out)
        }
        ZonePlan::Tags(tags) => {
            let zones = tags
                .values()
                .map(|&z| z as usize + 1)
                .max()
                .unwrap_or(1)
                .max(1);
            let mut out = vec![Vec::new(); zones];
            for (i, sub) in input.subscriptions.iter().enumerate() {
                if cancel.is_cancelled_hot() {
                    return Err(AllocError::Cancelled);
                }
                let z = tags.get(&sub.id).map_or(0, |&z| z as usize);
                if let Some(bucket) = out.get_mut(z) {
                    bucket.push(i);
                }
            }
            Ok(out)
        }
    }
}

/// Builds one zone's unit pool incrementally, maintaining the GIF
/// (general interest filter) grouping merge-on-the-fly: every pushed
/// unit joins its profile's group immediately, so the pool's GIF
/// structure is known the moment the feed finishes — no second pass
/// over the zone, and nothing outside the zone is ever resident.
///
/// The steady-state [`StreamingGifBuilder::push`] path is
/// allocation-free (enforced by the hot-path-alloc lint via
/// `analysis/hot-paths.txt`); only the first unit of a *new* GIF pays
/// for a profile key clone in `open_group`.
#[derive(Debug, Default)]
pub struct StreamingGifBuilder {
    units: Vec<Unit>,
    groups: BTreeMap<SubscriptionProfile, u32>,
}

impl StreamingGifBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one unit to the pool, folding it into its GIF group.
    pub fn push(&mut self, unit: Unit) {
        match self.groups.get_mut(&unit.profile) {
            Some(members) => *members += 1,
            None => self.open_group(&unit),
        }
        self.units.push(unit);
    }

    /// Opens a new GIF group for a first-seen profile. Cold path:
    /// runs once per distinct profile, amortized away on real
    /// workloads where many subscriptions share templates.
    fn open_group(&mut self, unit: &Unit) {
        self.groups.insert(unit.profile.clone(), 1);
    }

    /// Units pushed so far, in arrival order.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Number of units pushed so far.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of distinct GIF groups so far.
    pub fn gif_count(&self) -> usize {
        self.groups.len()
    }

    /// Finishes the pool: the units in arrival order (what per-zone
    /// CRAM consumes — order matters for bit-identical equivalence
    /// with a flat run) plus the distinct GIF count.
    pub fn finish(self) -> (Vec<Unit>, usize) {
        let gifs = self.groups.len();
        (self.units, gifs)
    }
}

/// A source of per-zone unit pools.
///
/// Implementations stream each zone's units into the builder on demand,
/// so [`zoned_allocate`] never holds more than one wave of zones in
/// memory. `greenps-workload` provides a scenario-backed implementation
/// that evaluates subscription filters lazily per zone.
pub trait ZoneFeed {
    /// Number of zones this feed yields.
    fn zone_count(&self) -> usize;

    /// Streams zone `zone`'s units (in a deterministic order) into
    /// `builder`, polling `cancel` as it goes.
    ///
    /// # Errors
    /// [`AllocError::Cancelled`] when the token trips mid-zone; the
    /// partially-fed builder is discarded by the caller, never
    /// allocated.
    fn feed(
        &mut self,
        zone: usize,
        builder: &mut StreamingGifBuilder,
        cancel: &CancelToken,
    ) -> Result<(), AllocError>;
}

/// A [`ZoneFeed`] over an already-materialized [`AllocationInput`],
/// partitioned by a [`ZonePlan`]. The in-memory path: right for
/// pipeline runs whose Phase 1 already gathered the full pool.
#[derive(Debug)]
pub struct InputZoneFeed<'a> {
    input: &'a AllocationInput,
    zones: Vec<Vec<usize>>,
}

impl<'a> InputZoneFeed<'a> {
    /// Partitions `input` under `plan`.
    pub fn new(input: &'a AllocationInput, plan: &ZonePlan) -> Self {
        // Never-token: the partition cannot be cancelled, so the empty
        // fallback is unreachable but total.
        Self::with_cancel(input, plan, &CancelToken::never()).unwrap_or_else(|_| InputZoneFeed {
            input,
            zones: Vec::new(),
        })
    }

    /// [`InputZoneFeed::new`] with a cancellation token threaded into
    /// the partition scan and every later [`ZoneFeed::feed`] call.
    ///
    /// # Errors
    /// [`AllocError::Cancelled`] when the token trips during the
    /// partition scan.
    pub fn with_cancel(
        input: &'a AllocationInput,
        plan: &ZonePlan,
        cancel: &CancelToken,
    ) -> Result<Self, AllocError> {
        Ok(InputZoneFeed {
            input,
            zones: partition(input, plan, cancel)?,
        })
    }

    /// Subscriptions per zone.
    pub fn zone_sizes(&self) -> Vec<usize> {
        self.zones.iter().map(Vec::len).collect()
    }
}

impl ZoneFeed for InputZoneFeed<'_> {
    fn zone_count(&self) -> usize {
        self.zones.len()
    }

    fn feed(
        &mut self,
        zone: usize,
        builder: &mut StreamingGifBuilder,
        cancel: &CancelToken,
    ) -> Result<(), AllocError> {
        let Some(indices) = self.zones.get(zone) else {
            return Ok(());
        };
        for &i in indices {
            if cancel.is_cancelled_hot() {
                return Err(AllocError::Cancelled);
            }
            if let Some(entry) = self.input.subscriptions.get(i) {
                builder.push(Unit::from_subscription(entry, &self.input.publishers));
            }
        }
        Ok(())
    }
}

/// Configuration of a hierarchical run.
#[derive(Debug, Clone, Copy)]
pub struct ZonedConfig {
    /// CRAM settings shared by every per-zone run and the cross-zone
    /// pass.
    pub cram: CramConfig,
    /// How many zones are materialized and clustered concurrently (the
    /// wave width). Results are bit-identical for every value; larger
    /// waves trade memory for parallelism.
    pub zone_threads: usize,
}

impl ZonedConfig {
    /// Defaults: the paper's CRAM configuration for `metric`, one zone
    /// at a time.
    pub fn with_metric(metric: ClosenessMetric) -> Self {
        ZonedConfig {
            cram: CramConfig::with_metric(metric),
            zone_threads: 1,
        }
    }

    /// Sets the wave width (clamped to ≥ 1).
    #[must_use]
    pub fn zone_threads(mut self, n: usize) -> Self {
        self.zone_threads = n.max(1);
        self
    }
}

/// One zone's clustering outcome: what the cross-zone pass consumed,
/// kept for the checkpoint artifact and the scale report.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneOutcome {
    /// Zone index.
    pub zone: u32,
    /// Subscriptions the zone held.
    pub subscriptions: usize,
    /// Distinct GIF groups in the zone's pool.
    pub gifs: usize,
    /// The zone's CRAM counters.
    pub stats: CramStats,
    /// The zone's GIF roots — one super-unit per allocated broker,
    /// re-clustered by the cross-zone pass.
    pub roots: Vec<Unit>,
}

/// The outcome of a hierarchical run: the final allocation plus the
/// per-zone trail. This is the artifact checkpointed by
/// [`ZonedAllocatePhase`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZonedAllocation {
    /// The final (cross-zone) allocation over the real broker pool.
    pub allocation: Allocation,
    /// Per-zone outcomes, in zone order.
    pub zones: Vec<ZoneOutcome>,
    /// Counters of the cross-zone CRAM pass; `None` when a single zone
    /// made the pass unnecessary.
    pub cross_stats: Option<CramStats>,
    /// How many extra zones each final broker spans, summed: a broker
    /// whose subscriptions come from `k` distinct zones contributes
    /// `k - 1`. Zero means the partition was perfectly preserved.
    pub cross_links: u64,
}

impl ZonedAllocation {
    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Total subscriptions in the final allocation.
    pub fn sub_count(&self) -> usize {
        self.allocation.sub_count()
    }
}

/// Converts an allocation's broker loads into super-units for the
/// recursive pass: each load's union profile becomes the unit profile
/// (the broker's "virtual subscription", exactly Phase 3's view) and
/// its consumed output bandwidth becomes the unit requirement.
pub fn super_units(allocation: &Allocation) -> Vec<Unit> {
    allocation
        .loads
        .iter()
        .map(|load| Unit {
            subs: load.sub_ids().collect(),
            profile: load.union_profile.clone(),
            out_bandwidth: load.out_bw_used,
        })
        .collect()
}

/// Outcome of a resumable hierarchical run: either the finished
/// allocation or a checkpoint of the zones completed before the cancel
/// flag was observed.
#[derive(Debug, Clone, PartialEq)]
pub enum ZonedRun {
    /// The run finished; nothing was cancelled.
    Complete(ZonedAllocation),
    /// The cancel token tripped; `0` holds every completed zone (a
    /// prefix of the zone order). Feed it back as the `resume` argument
    /// of [`zoned_allocate_resumable`] to continue bit-identically.
    Cancelled(ZonedCheckpoint),
}

/// Completed per-zone outcomes of a cancelled hierarchical run — always
/// a prefix of the zone order, so resuming means starting at zone
/// `done.len()`. Each [`ZoneOutcome`] carries its super-unit roots,
/// which is all the cross-zone pass (and the cross-link accounting)
/// needs; re-running the remaining zones and the cross pass yields a
/// result bit-identical to an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZonedCheckpoint {
    /// Outcomes of the zones that finished before cancellation.
    pub done: Vec<ZoneOutcome>,
}

/// Cross-zone links of a final allocation: for every broker, the
/// number of distinct source zones among its subscriptions minus one.
fn count_cross_links(allocation: &Allocation, sub_zone: &[(SubId, u32)]) -> u64 {
    let mut total = 0u64;
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for load in &allocation.loads {
        seen.clear();
        for s in load.sub_ids() {
            if let Ok(i) = sub_zone.binary_search_by_key(&s, |&(id, _)| id) {
                if let Some(&(_, z)) = sub_zone.get(i) {
                    seen.insert(z);
                }
            }
        }
        total += (seen.len() as u64).saturating_sub(1);
    }
    total
}

/// Runs the full hierarchical scheme: per-zone CRAM over `feed`'s
/// zones (a wave of `config.zone_threads` zones at a time, in parallel
/// over [`shard_map`]), then the recursive cross-zone pass over all
/// zones' super-units against the real broker pool.
///
/// Telemetry: `zone.count` (gauge), `zone.size` per-zone subscription
/// histogram, a `zone.cram.z<id>` span per zone, the literal
/// `zone.cram.cross` span for the recursive pass, and the
/// `zone.merge.cross_links` counter. Observation only — results are
/// bit-identical with [`Registry::disabled`].
///
/// With exactly one zone the cross-zone pass is skipped and the result
/// equals a flat [`CramBuilder::run`] bit-for-bit (allocation and
/// stats).
///
/// # Errors
/// Fails when any zone's baseline allocation (or the cross-zone pass)
/// is infeasible on the broker pool.
pub fn zoned_allocate(
    feed: &mut dyn ZoneFeed,
    brokers: &[BrokerSpec],
    publishers: &PublisherTable,
    config: &ZonedConfig,
    registry: &Registry,
) -> Result<ZonedAllocation, AllocError> {
    // Never-token: the `Cancelled` arm is unreachable, but mapping it
    // to an error keeps the wrapper total without a panic path.
    match zoned_allocate_resumable(
        feed,
        brokers,
        publishers,
        config,
        registry,
        &CancelToken::never(),
        None,
    )? {
        ZonedRun::Complete(allocation) => Ok(allocation),
        ZonedRun::Cancelled(_) => Err(AllocError::Cancelled),
    }
}

/// [`zoned_allocate`] with cancellation and resume: polls `cancel` at
/// every wave boundary (and threads it into the per-zone CRAM runs, the
/// feed, and the cross-zone pass), stopping within one wave of the
/// store. A cancelled run returns [`ZonedRun::Cancelled`] holding every
/// *completed* zone — always a prefix of the zone order; in-flight
/// zones are discarded, never checkpointed half-done. Passing that
/// checkpoint back as `resume` skips the completed zones and produces a
/// [`ZonedAllocation`] bit-identical to an uninterrupted run, because
/// zones are computed independently and deterministically.
///
/// Telemetry (observation only): everything [`zoned_allocate`] reports,
/// plus the `pipeline.cancel.observed` counter and a `zone.cancelled`
/// event in the `zone` ring when a cancellation is observed.
///
/// # Errors
/// As [`zoned_allocate`]; cancellation is *not* an error here — it is
/// the [`ZonedRun::Cancelled`] outcome.
#[allow(clippy::too_many_arguments)]
pub fn zoned_allocate_resumable(
    feed: &mut dyn ZoneFeed,
    brokers: &[BrokerSpec],
    publishers: &PublisherTable,
    config: &ZonedConfig,
    registry: &Registry,
    cancel: &CancelToken,
    resume: Option<ZonedCheckpoint>,
) -> Result<ZonedRun, AllocError> {
    let zone_count = feed.zone_count().max(1);
    registry.gauge("zone.count").set(zone_count as u64);
    // Per-zone runs only consult the broker pool and publisher table;
    // the subscription pool streams through the feed instead.
    let shared = AllocationInput {
        brokers: brokers.to_vec(),
        subscriptions: Vec::new(),
        publishers: publishers.clone(),
    };
    let wave = config.zone_threads.max(1);
    let single = zone_count == 1;

    // Telemetry for an observed cancellation, fired once per return.
    let observe_cancel = |done: usize| {
        registry.counter("pipeline.cancel.observed").add(1);
        registry.ring("zone").emit_with("zone.cancelled", || {
            format!("{done} of {zone_count} zone(s) checkpointed")
        });
    };

    let run_zone = |z: u32, gifs: usize, units: Vec<Unit>| {
        let _span = Span::enter(registry, &format!("zone.cram.z{z}"));
        CramBuilder::from_config(config.cram)
            .cancel_token(cancel)
            .run_units(&shared, units)
            .map(|(alloc, stats)| (z, gifs, alloc, stats))
    };

    let mut zones: Vec<ZoneOutcome> = Vec::with_capacity(zone_count);
    let mut sub_zone: Vec<(SubId, u32)> = Vec::new();
    let mut final_alloc = None;
    // Resume: trust only a plausible prefix (single-zone runs always
    // restart — their checkpoint is never produced, and the flat
    // equivalence guarantee is cheaper to keep by re-running).
    if let Some(checkpoint) = resume {
        if !single && checkpoint.done.len() <= zone_count {
            zones = checkpoint.done;
            for z in &zones {
                for root in &z.roots {
                    for &sub in &root.subs {
                        sub_zone.push((sub, z.zone));
                    }
                }
            }
        }
    }
    let mut start = zones.len();
    while start < zone_count {
        if cancel.is_cancelled_hot() {
            observe_cancel(zones.len());
            return Ok(ZonedRun::Cancelled(ZonedCheckpoint { done: zones }));
        }
        let end = (start + wave).min(zone_count);
        // Materialize this wave's pools. The feed is one stream, so
        // materialization is sequential; only `end - start` zones are
        // resident at once.
        let mut batch: Vec<(u32, usize, Vec<Unit>)> = Vec::with_capacity(end - start);
        for z in start..end {
            let mut builder = StreamingGifBuilder::new();
            match feed.feed(z, &mut builder, cancel) {
                Ok(()) => {}
                Err(AllocError::Cancelled) => {
                    // The half-fed zone is dropped; `zones` still holds
                    // only fully-completed waves, a valid prefix.
                    observe_cancel(zones.len());
                    return Ok(ZonedRun::Cancelled(ZonedCheckpoint { done: zones }));
                }
                Err(e) => return Err(e),
            }
            let subs: usize = builder.units().iter().map(Unit::sub_count).sum();
            registry.histogram("zone.size").record(subs as u64);
            let (units, gifs) = builder.finish();
            if !single {
                for u in &units {
                    for &s in &u.subs {
                        sub_zone.push((s, z as u32));
                    }
                }
            }
            batch.push((z as u32, gifs, units));
        }
        // Cluster the wave — in parallel when the wave is wider than
        // one zone, moving (not cloning) the pools on the common
        // sequential path.
        let results: Vec<Result<(u32, usize, Allocation, CramStats), AllocError>> =
            if wave <= 1 || batch.len() <= 1 {
                batch
                    .into_iter()
                    .map(|(z, gifs, units)| run_zone(z, gifs, units))
                    .collect()
            } else {
                shard_map(&batch, wave, |(z, gifs, units)| {
                    run_zone(*z, *gifs, units.clone())
                })
            };
        for result in results {
            let (zone, gifs, alloc, stats) = match result {
                Ok(r) => r,
                Err(AllocError::Cancelled) => {
                    // Results are processed in zone order, so stopping
                    // at the first cancelled zone keeps `zones` a
                    // completed prefix; later zones of the wave (even
                    // finished ones) are recomputed deterministically
                    // on resume.
                    observe_cancel(zones.len());
                    return Ok(ZonedRun::Cancelled(ZonedCheckpoint { done: zones }));
                }
                Err(e) => return Err(e),
            };
            let roots = super_units(&alloc);
            let subscriptions = alloc.sub_count();
            if single {
                final_alloc = Some(alloc);
            }
            zones.push(ZoneOutcome {
                zone,
                subscriptions,
                gifs,
                stats,
                roots,
            });
        }
        start = end;
    }

    if let Some(allocation) = final_alloc {
        // One zone: the recursive pass would only re-cluster that
        // zone's own result — skip it so the outcome is bit-identical
        // to a flat run.
        return Ok(ZonedRun::Complete(ZonedAllocation {
            allocation,
            zones,
            cross_stats: None,
            cross_links: 0,
        }));
    }

    if cancel.is_cancelled_hot() {
        observe_cancel(zones.len());
        return Ok(ZonedRun::Cancelled(ZonedCheckpoint { done: zones }));
    }

    // Recursive Phase 3 across zones: every zone root becomes a unit
    // and CRAM re-allocates them over the real pool. Per-zone broker
    // assignments are discarded; each super-unit fit one broker in its
    // zone, so the baseline packing stays feasible.
    let roots: Vec<Unit> = zones.iter().flat_map(|z| z.roots.iter().cloned()).collect();
    let cross = {
        let _span = Span::enter(registry, "zone.cram.cross");
        CramBuilder::from_config(config.cram)
            .telemetry(registry)
            .cancel_token(cancel)
            .run_units(&shared, roots)
    };
    let (allocation, stats) = match cross {
        Ok(r) => r,
        Err(AllocError::Cancelled) => {
            // Every zone is done; only the cross pass restarts on
            // resume.
            observe_cancel(zones.len());
            return Ok(ZonedRun::Cancelled(ZonedCheckpoint { done: zones }));
        }
        Err(e) => return Err(e),
    };
    sub_zone.sort_unstable();
    let cross_links = count_cross_links(&allocation, &sub_zone);
    registry.counter("zone.merge.cross_links").add(cross_links);
    Ok(ZonedRun::Complete(ZonedAllocation {
        allocation,
        zones,
        cross_stats: Some(stats),
        cross_links,
    }))
}

fn zone_outcome_to_json(z: &ZoneOutcome) -> JsonValue {
    JsonValue::obj()
        .field("zone", JsonValue::U64(u64::from(z.zone)))
        .field("subscriptions", JsonValue::U64(z.subscriptions as u64))
        .field("gifs", JsonValue::U64(z.gifs as u64))
        .field("stats", cram_stats_to_json(&z.stats))
        .field(
            "roots",
            JsonValue::Arr(z.roots.iter().map(unit_to_json).collect()),
        )
}

fn zone_outcome_from_json(entry: &JsonValue) -> Result<ZoneOutcome, ArtifactError> {
    let mut roots = Vec::new();
    for u in arr_field(entry, "roots")? {
        roots.push(unit_from_json(u)?);
    }
    Ok(ZoneOutcome {
        zone: u32::try_from(u64_field(entry, "zone")?)
            .map_err(|_| ArtifactError::new("zone index out of range"))?,
        subscriptions: usize_field(entry, "subscriptions")?,
        gifs: usize_field(entry, "gifs")?,
        stats: cram_stats_from_json(field(entry, "stats")?)?,
        roots,
    })
}

impl Artifact for ZonedAllocation {
    const KIND: &'static str = "zoned-allocation";

    fn to_json(&self) -> JsonValue {
        let zones = JsonValue::Arr(self.zones.iter().map(zone_outcome_to_json).collect());
        let obj = JsonValue::obj()
            .field("allocation", allocation_to_json(&self.allocation))
            .field("cross_links", JsonValue::U64(self.cross_links))
            .field("zones", zones);
        match &self.cross_stats {
            Some(stats) => obj.field("cross_stats", cram_stats_to_json(stats)),
            None => obj,
        }
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        let mut zones = Vec::new();
        for entry in arr_field(value, "zones")? {
            zones.push(zone_outcome_from_json(entry)?);
        }
        Ok(ZonedAllocation {
            allocation: allocation_from_json(field(value, "allocation")?)?,
            zones,
            cross_stats: match value.get("cross_stats") {
                Some(stats) => Some(cram_stats_from_json(stats)?),
                None => None,
            },
            cross_links: u64_field(value, "cross_links")?,
        })
    }
}

impl Artifact for ZonedCheckpoint {
    const KIND: &'static str = "zoned-checkpoint";

    fn to_json(&self) -> JsonValue {
        JsonValue::obj().field(
            "done",
            JsonValue::Arr(self.done.iter().map(zone_outcome_to_json).collect()),
        )
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        let mut done = Vec::new();
        for entry in arr_field(value, "done")? {
            done.push(zone_outcome_from_json(entry)?);
        }
        Ok(ZonedCheckpoint { done })
    }
}

/// The pipeline's `ZonedAllocate` stage: [`zoned_allocate`] over an
/// [`InputZoneFeed`] as a checkpointable [`Phase`]. The hierarchical
/// alternative to [`crate::croc::AllocatePhase`].
#[derive(Debug)]
pub struct ZonedAllocatePhase<'a> {
    /// The gathered Phase-1 input.
    pub input: &'a AllocationInput,
    /// How subscriptions map to zones.
    pub plan: ZonePlan,
    /// Per-zone and cross-zone CRAM settings.
    pub config: ZonedConfig,
    /// Completed-zone checkpoint from a previously cancelled run;
    /// consumed (taken) by [`Phase::run`].
    pub resume: Option<ZonedCheckpoint>,
    /// Where a cancelled run parks its checkpoint: when [`Phase::run`]
    /// returns [`PipelineError::Cancelled`], this holds the completed
    /// prefix to stash and later feed back through `resume`.
    pub partial: Option<ZonedCheckpoint>,
}

impl Phase for ZonedAllocatePhase<'_> {
    type Input = ();
    type Output = ZonedAllocation;
    const KIND: PhaseKind = PhaseKind::ZonedAllocate;

    fn run(&mut self, _input: (), ctx: &ReconfigContext) -> Result<ZonedAllocation, PipelineError> {
        let cancel = ctx.cancel_token();
        let cancelled = |phase: &mut Self, checkpoint: Option<ZonedCheckpoint>| {
            phase.partial = checkpoint;
            PipelineError::Cancelled {
                phase: PhaseKind::ZonedAllocate,
            }
        };
        let mut feed = match InputZoneFeed::with_cancel(self.input, &self.plan, &cancel) {
            Ok(feed) => feed,
            Err(AllocError::Cancelled) => return Err(cancelled(self, None)),
            Err(e) => {
                return Err(PipelineError::Phase {
                    phase: PhaseKind::ZonedAllocate,
                    message: e.to_string(),
                })
            }
        };
        match zoned_allocate_resumable(
            &mut feed,
            &self.input.brokers,
            &self.input.publishers,
            &self.config,
            ctx.registry(),
            &cancel,
            self.resume.take(),
        ) {
            Ok(ZonedRun::Complete(allocation)) => Ok(allocation),
            Ok(ZonedRun::Cancelled(checkpoint)) => Err(cancelled(self, Some(checkpoint))),
            Err(e) => Err(PipelineError::Phase {
                phase: PhaseKind::ZonedAllocate,
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use crate::pipeline::Pipeline;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{BrokerId, MsgId};
    use greenps_pubsub::Filter;

    const WINDOW: u64 = 100;

    fn profile(adv: u64, ids: &[u64]) -> SubscriptionProfile {
        let mut v = ShiftingBitVector::starting_at(WINDOW as usize, 0);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(WINDOW as usize);
        p.insert_vector(AdvId::new(adv), v);
        p
    }

    fn input(subs: usize, brokers: usize, advs: u64) -> AllocationInput {
        let mut inp = AllocationInput::new();
        for a in 1..=advs {
            inp.publishers.insert(PublisherProfile::new(
                AdvId::new(a),
                100.0,
                100_000.0,
                MsgId::new(WINDOW - 1),
            ));
        }
        for i in 0..subs as u64 {
            let adv = 1 + i % advs;
            let lo = (i % 5) * 10;
            let ids: Vec<u64> = (lo..lo + 30).collect();
            inp.subscriptions.push(SubscriptionEntry::new(
                SubId::new(i),
                Filter::new(),
                profile(adv, &ids),
            ));
        }
        for b in 0..brokers as u64 {
            inp.brokers.push(BrokerSpec::new(
                BrokerId::new(b),
                format!("b{b}"),
                LinearFn::new(0.0001, 0.0),
                250_000.0,
            ));
        }
        inp
    }

    #[test]
    fn affinity_partition_is_deterministic_and_total() {
        let inp = input(60, 8, 4);
        let plan = ZonePlan::PublisherAffinity { zones: 3, seed: 7 };
        let a = partition(&inp, &plan, &CancelToken::never()).unwrap();
        let b = partition(&inp, &plan, &CancelToken::never()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut all: Vec<usize> = a.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..60).collect::<Vec<_>>());
        // Affinity keeps a publisher's followers together: subs with
        // the same dominant adv share a zone.
        for zone in &a {
            for &i in zone {
                let adv = dominant_adv(&inp.subscriptions[i].profile).unwrap();
                let zone_of_first = a.iter().position(|z| {
                    z.iter()
                        .any(|&j| dominant_adv(&inp.subscriptions[j].profile) == Some(adv))
                });
                assert_eq!(zone_of_first, a.iter().position(|z| z.contains(&i)));
            }
        }
        // A different seed may produce a different partition; the same
        // seed never does (checked above). Changing the zone count
        // changes the shape.
        assert_eq!(
            partition(
                &inp,
                &ZonePlan::PublisherAffinity { zones: 1, seed: 7 },
                &CancelToken::never()
            )
            .unwrap()
            .len(),
            1
        );
    }

    #[test]
    fn tag_partition_follows_tags_and_defaults_to_zone_zero() {
        let inp = input(10, 4, 2);
        let mut tags = BTreeMap::new();
        for i in 0..8u64 {
            tags.insert(SubId::new(i), (i % 3) as u32);
        }
        // Subs 8 and 9 are untagged -> zone 0.
        let zones = partition(&inp, &ZonePlan::Tags(tags), &CancelToken::never()).unwrap();
        assert_eq!(zones.len(), 3);
        assert!(zones[0].contains(&8) && zones[0].contains(&9));
        assert_eq!(zones.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn streaming_builder_groups_identical_profiles() {
        let inp = input(12, 4, 2);
        let mut b = StreamingGifBuilder::new();
        assert!(b.is_empty());
        for e in &inp.subscriptions {
            b.push(Unit::from_subscription(e, &inp.publishers));
        }
        assert_eq!(b.len(), 12);
        // 2 advs x 5 bit patterns, but only 10 combinations exist for
        // 12 subs with i % 2 advs and i % 5 offsets.
        let expected_gifs = b.gif_count();
        assert!((2..12).contains(&expected_gifs));
        let (units, gifs) = b.finish();
        assert_eq!(units.len(), 12);
        assert_eq!(gifs, expected_gifs);
        // Arrival order preserved.
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.subs, vec![SubId::new(i as u64)]);
        }
    }

    #[test]
    fn single_zone_matches_flat_run_bit_for_bit() {
        let inp = input(40, 10, 3);
        for metric in ClosenessMetric::ALL {
            let config = ZonedConfig::with_metric(metric);
            let flat = CramBuilder::from_config(config.cram).run(&inp).unwrap();
            let mut feed =
                InputZoneFeed::new(&inp, &ZonePlan::PublisherAffinity { zones: 1, seed: 0 });
            let zoned = zoned_allocate(
                &mut feed,
                &inp.brokers,
                &inp.publishers,
                &config,
                &Registry::disabled(),
            )
            .unwrap();
            assert_eq!(zoned.allocation, flat.0, "{metric:?}");
            assert_eq!(zoned.zones.len(), 1);
            assert_eq!(zoned.zones[0].stats, flat.1, "{metric:?}");
            assert!(zoned.cross_stats.is_none());
            assert_eq!(zoned.cross_links, 0);
        }
    }

    #[test]
    fn multi_zone_run_covers_every_subscription() {
        let inp = input(60, 12, 4);
        let registry = Registry::new();
        let config = ZonedConfig::with_metric(ClosenessMetric::Intersect);
        let plan = ZonePlan::PublisherAffinity { zones: 4, seed: 3 };
        let mut feed = InputZoneFeed::new(&inp, &plan);
        let zoned =
            zoned_allocate(&mut feed, &inp.brokers, &inp.publishers, &config, &registry).unwrap();
        assert_eq!(zoned.sub_count(), 60);
        let mut ids: Vec<SubId> = zoned
            .allocation
            .loads
            .iter()
            .flat_map(|l| l.sub_ids())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..60).map(SubId::new).collect::<Vec<_>>());
        assert!(zoned.cross_stats.is_some());
        assert_eq!(
            zoned.zones.iter().map(|z| z.subscriptions).sum::<usize>(),
            60
        );
        // Telemetry observed the run.
        let snap = registry.snapshot();
        assert_eq!(snap.gauges.get("zone.count"), Some(&4));
        assert!(snap.spans.keys().any(|k| k.starts_with("zone.cram.z")));
        assert!(snap.spans.contains_key("zone.cram.cross"));
        assert_eq!(
            snap.counters.get("zone.merge.cross_links").copied(),
            Some(zoned.cross_links)
        );
    }

    #[test]
    fn wave_width_does_not_change_the_result() {
        let inp = input(48, 10, 4);
        let plan = ZonePlan::PublisherAffinity { zones: 3, seed: 1 };
        let mut outcomes = Vec::new();
        for wave in [1usize, 2, 4] {
            let config = ZonedConfig::with_metric(ClosenessMetric::Ios).zone_threads(wave);
            let mut feed = InputZoneFeed::new(&inp, &plan);
            outcomes.push(
                zoned_allocate(
                    &mut feed,
                    &inp.brokers,
                    &inp.publishers,
                    &config,
                    &Registry::disabled(),
                )
                .unwrap(),
            );
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }

    #[test]
    fn artifact_roundtrip_is_identity() {
        let inp = input(30, 8, 3);
        let plan = ZonePlan::PublisherAffinity { zones: 2, seed: 5 };
        let mut feed = InputZoneFeed::new(&inp, &plan);
        let zoned = zoned_allocate(
            &mut feed,
            &inp.brokers,
            &inp.publishers,
            &ZonedConfig::with_metric(ClosenessMetric::Iou),
            &Registry::disabled(),
        )
        .unwrap();
        let json = zoned.to_json();
        let back = ZonedAllocation::from_json(&json).unwrap();
        assert_eq!(back, zoned);
    }

    #[test]
    fn zoned_phase_checkpoints_and_replays() {
        let inp = input(24, 8, 2);
        let ctx = ReconfigContext::new();
        let mut pipeline = Pipeline::new(ctx.clone());
        let mut phase = ZonedAllocatePhase {
            input: &inp,
            plan: ZonePlan::PublisherAffinity { zones: 2, seed: 2 },
            config: ZonedConfig::with_metric(ClosenessMetric::Intersect),
            resume: None,
            partial: None,
        };
        let first = pipeline.run_phase(&mut phase, ()).unwrap();
        assert!(pipeline.store().contains(PhaseKind::ZonedAllocate));
        // Resume from the serialized store: bit-identical replay.
        let text = pipeline.into_store().to_json();
        let store = crate::pipeline::CheckpointStore::from_json(&text).unwrap();
        let mut resumed = Pipeline::resume(ReconfigContext::new(), store);
        let replayed = resumed.run_phase(&mut phase, ()).unwrap();
        assert_eq!(replayed, first);
    }

    #[test]
    fn infeasible_pool_propagates() {
        let mut inp = input(20, 4, 2);
        for b in &mut inp.brokers {
            b.out_bandwidth = 1.0;
        }
        let mut feed = InputZoneFeed::new(&inp, &ZonePlan::PublisherAffinity { zones: 2, seed: 0 });
        let err = zoned_allocate(
            &mut feed,
            &inp.brokers,
            &inp.publishers,
            &ZonedConfig::with_metric(ClosenessMetric::Intersect),
            &Registry::disabled(),
        );
        assert!(err.is_err());
    }
}
