//! Capacity bookkeeping and the allocation feasibility test (paper
//! §IV-A).
//!
//! A broker "is deemed to have enough capacity to handle a subscription
//! only if by accepting this subscription, its remaining available
//! output bandwidth is greater than 0 and its incoming publication rate
//! is less than or equal to its maximum matching rate", where the
//! maximum matching rate is the inverse of the linear matching-delay
//! function.
//!
//! [`Packer`] holds the running state of one allocation attempt: brokers
//! sorted by resourcefulness (descending total output bandwidth), each
//! with its accumulated union profile, used output bandwidth and stored
//! subscription count. FBF, BIN PACKING and CRAM's allocation test all
//! place units through it.

use crate::model::{AllocError, Allocation, BrokerLoad, BrokerSpec, Unit};
use crate::pipeline::CancelToken;
use greenps_profile::{PublisherTable, ShiftingBitVector, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId};
use std::sync::Arc;

/// Running placement state of one broker during packing.
#[derive(Debug, Clone)]
struct BrokerState {
    spec: BrokerSpec,
    union: SubscriptionProfile,
    out_used: f64,
    subs: usize,
    units: Vec<Unit>,
}

impl BrokerState {
    fn new(spec: BrokerSpec) -> Self {
        Self {
            spec,
            union: SubscriptionProfile::new(),
            out_used: 0.0,
            subs: 0,
            units: Vec::new(),
        }
    }

    /// The feasibility test from the paper.
    fn can_accept(&self, unit: &Unit, publishers: &PublisherTable) -> bool {
        // Remaining output bandwidth must stay positive.
        if self.out_used + unit.out_bandwidth >= self.spec.out_bandwidth {
            return false;
        }
        // Incoming publication rate must not exceed the maximum
        // matching rate at the new subscription count.
        let in_rate = self
            .union
            .estimate_union_load(&unit.profile, publishers)
            .rate;
        let max_rate = self
            .spec
            .matching_delay
            .max_rate(self.subs + unit.sub_count());
        in_rate <= max_rate
    }

    fn accept(&mut self, unit: Unit) {
        self.union.or_assign(&unit.profile);
        self.out_used += unit.out_bandwidth;
        self.subs += unit.sub_count();
        self.units.push(unit);
    }
}

/// One allocation attempt over a broker pool.
#[derive(Debug, Clone)]
pub struct Packer<'p> {
    states: Vec<BrokerState>,
    publishers: &'p PublisherTable,
}

impl<'p> Packer<'p> {
    /// Creates a packer over the broker pool, sorted in descending order
    /// of total available output bandwidth (ties broken by id for
    /// determinism).
    pub fn new(brokers: &[BrokerSpec], publishers: &'p PublisherTable) -> Self {
        let mut specs: Vec<BrokerSpec> = brokers.to_vec();
        specs.sort_by(|a, b| {
            b.out_bandwidth
                .partial_cmp(&a.out_bandwidth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Self {
            states: specs.into_iter().map(BrokerState::new).collect(),
            publishers,
        }
    }

    /// Number of brokers in the pool.
    pub fn broker_count(&self) -> usize {
        self.states.len()
    }

    /// Places a unit on the most resourceful broker that can accept it.
    ///
    /// # Errors
    /// Returns [`AllocError::NoBrokers`] on an empty pool and
    /// [`AllocError::Infeasible`] when no broker passes the test.
    pub fn place(&mut self, unit: Unit) -> Result<BrokerId, AllocError> {
        if self.states.is_empty() {
            return Err(AllocError::NoBrokers);
        }
        for state in &mut self.states {
            if state.can_accept(&unit, self.publishers) {
                let id = state.spec.id;
                state.accept(unit);
                return Ok(id);
            }
        }
        Err(AllocError::Infeasible { subs: unit.subs })
    }

    /// True when at least one broker could accept the unit, without
    /// placing it.
    pub fn fits(&self, unit: &Unit) -> bool {
        self.states
            .iter()
            .any(|s| s.can_accept(unit, self.publishers))
    }

    /// Finalizes into an [`Allocation`] containing only brokers that
    /// received units.
    pub fn into_allocation(self) -> Allocation {
        let publishers = self.publishers;
        let loads = self
            .states
            .into_iter()
            .filter(|s| !s.units.is_empty())
            .map(|s| {
                let input = s.union.estimate_load(publishers);
                BrokerLoad {
                    broker: s.spec.id,
                    units: s.units,
                    union_profile: s.union,
                    out_bw_used: s.out_used,
                    in_rate: input.rate,
                    in_bandwidth: input.bandwidth,
                }
            })
            .collect();
        Allocation { loads }
    }
}

/// A feasibility-only packing pass over borrowed units: returns the
/// bandwidth-descending packing outcome without cloning any unit, or
/// the index of the first unplaceable unit. The CRAM allocation test
/// runs thousands of these per invocation; avoiding the per-test unit
/// clones is what keeps 8,000-subscription runs tractable.
#[derive(Debug)]
pub struct RefPacker<'u> {
    states: Vec<RefBrokerState<'u>>,
}

#[derive(Debug)]
struct RefBrokerState<'u> {
    spec: BrokerSpec,
    union: SubscriptionProfile,
    /// Running estimate of the union profile's input rate.
    in_rate: f64,
    out_used: f64,
    subs: usize,
    units: Vec<&'u Unit>,
}

impl<'u> RefPacker<'u> {
    /// Creates a reference packer over a broker pool (same ordering as
    /// [`Packer`]).
    pub fn new(brokers: &[BrokerSpec]) -> Self {
        let mut specs: Vec<BrokerSpec> = brokers.to_vec();
        specs.sort_by(|a, b| {
            b.out_bandwidth
                .partial_cmp(&a.out_bandwidth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Self {
            states: specs
                .into_iter()
                .map(|spec| RefBrokerState {
                    spec,
                    union: SubscriptionProfile::new(),
                    in_rate: 0.0,
                    out_used: 0.0,
                    subs: 0,
                    units: Vec::new(),
                })
                .collect(),
        }
    }

    /// Packs borrowed units in descending bandwidth order.
    ///
    /// # Errors
    /// Fails with the subscriptions of the first unplaceable unit.
    pub fn pack_sorted(
        &mut self,
        publishers: &PublisherTable,
        mut units: Vec<&'u Unit>,
    ) -> Result<(), AllocError> {
        if self.states.is_empty() {
            return if units.is_empty() {
                Ok(())
            } else {
                Err(AllocError::NoBrokers)
            };
        }
        units.sort_by(|a, b| {
            b.out_bandwidth
                .total_cmp(&a.out_bandwidth)
                .then_with(|| a.subs.cmp(&b.subs))
        });
        'units: for unit in units {
            for state in &mut self.states {
                // Cheap bandwidth check first — the dominant rejection.
                if state.out_used + unit.out_bandwidth >= state.spec.out_bandwidth {
                    continue;
                }
                // Incremental rate check: only the unit's publishers
                // can change the union rate.
                let delta = state.union.estimate_rate_delta(&unit.profile, publishers);
                let in_rate = state.in_rate + delta;
                let max_rate = state
                    .spec
                    .matching_delay
                    .max_rate(state.subs + unit.sub_count());
                if in_rate > max_rate {
                    continue;
                }
                state.union.or_assign(&unit.profile);
                state.in_rate = in_rate;
                state.out_used += unit.out_bandwidth;
                state.subs += unit.sub_count();
                state.units.push(unit);
                continue 'units;
            }
            return Err(AllocError::Infeasible {
                subs: unit.subs.clone(),
            });
        }
        Ok(())
    }

    /// Number of brokers that received at least one unit.
    pub fn used_brokers(&self) -> usize {
        self.states.iter().filter(|s| !s.units.is_empty()).count()
    }

    /// Materializes a full [`Allocation`] (clones the packed units).
    pub fn into_allocation(self, publishers: &PublisherTable) -> Allocation {
        let loads = self
            .states
            .into_iter()
            .filter(|s| !s.units.is_empty())
            .map(|s| {
                let input = s.union.estimate_load(publishers);
                BrokerLoad {
                    broker: s.spec.id,
                    units: s.units.into_iter().cloned().collect(),
                    union_profile: s.union,
                    out_bw_used: s.out_used,
                    in_rate: input.rate,
                    in_bandwidth: input.bandwidth,
                }
            })
            .collect();
        Allocation { loads }
    }
}

/// One per-publisher union window of one broker, reused across packs.
///
/// A slot is live for the current pack iff its `epoch` matches the
/// packer's; stale slots are logically empty, so resetting all broker
/// unions between packs is a single counter bump instead of a walk.
#[derive(Debug)]
struct FastSlot {
    epoch: u64,
    vec: ShiftingBitVector,
    /// Cached popcount of `vec` — the `old` side of the rate-delta
    /// fraction, saving one full word pass per placement probe.
    ones: usize,
}

/// Per-broker running state of the current [`FastPacker`] pack.
#[derive(Debug)]
struct FastBroker {
    spec: BrokerSpec,
    out_used: f64,
    in_rate: f64,
    subs: usize,
    /// Units placed on this broker, in placement order — the recipe a
    /// best-so-far allocation is later materialized from.
    picks: Vec<Arc<Unit>>,
}

/// The persistent allocation-test packer behind CRAM's arena engine.
///
/// [`RefPacker`] rebuilds its broker states — and re-walks every union
/// profile with two popcount passes per probe — on each of the
/// thousands of feasibility tests a CRAM run performs. `FastPacker` is
/// constructed **once** per run and reset per pack by bumping an epoch
/// counter; per-(broker, publisher) union windows live in reusable
/// [`FastSlot`]s with cached popcounts, so a placement probe costs one
/// streaming [`ShiftingBitVector::pair_cardinalities`] pass instead of
/// a `count_ones` walk plus an `or_count` walk.
///
/// The acceptance decisions are bit-identical to
/// [`RefPacker::pack_sorted`] over the same unit order: the broker
/// order replicates `RefPacker::new`'s sort, and the rate check
/// reproduces `SubscriptionProfile::estimate_rate_delta`'s exact f64
/// operation sequence (same fraction arguments, same accumulation
/// order). Publishers absent from the table are skipped entirely — the
/// reference delta never reads them, so they cannot influence any
/// accept/reject decision.
#[derive(Debug)]
pub(crate) struct FastPacker {
    brokers: Vec<FastBroker>,
    /// Publisher advertisement ids, ascending (the slot column index).
    advs: Vec<AdvId>,
    /// Publication rate per publisher, parallel to `advs`.
    rates: Vec<f64>,
    /// Raw `last_msg_id` per publisher, parallel to `advs`.
    last_msgs: Vec<u64>,
    /// Dense broker-major `(broker, publisher)` union slots.
    slots: Vec<FastSlot>,
    epoch: u64,
    /// Scratch: `(slot index, |union|)` for the most recent probe's
    /// shared-publisher legs, so acceptance reuses the probe's popcount.
    or_scratch: Vec<(usize, usize)>,
}

/// The unit order [`RefPacker::pack_sorted`] packs in: output bandwidth
/// descending, subscription list ascending as the tiebreak. Over any
/// live CRAM pool plus one trial merged unit the subscription lists are
/// pairwise disjoint and non-empty, so this is a strict total order —
/// which is what lets the engine maintain one sorted unit list
/// incrementally instead of re-sorting per test.
pub(crate) fn pack_order(a: &Unit, b: &Unit) -> std::cmp::Ordering {
    b.out_bandwidth
        .total_cmp(&a.out_bandwidth)
        .then_with(|| a.subs.cmp(&b.subs))
}

impl FastPacker {
    /// Builds the persistent packer: brokers sorted exactly as
    /// [`RefPacker::new`] sorts them, one slot per (broker, publisher).
    pub(crate) fn new(brokers: &[BrokerSpec], publishers: &PublisherTable) -> Self {
        let mut specs: Vec<BrokerSpec> = brokers.to_vec();
        specs.sort_by(|a, b| {
            b.out_bandwidth
                .partial_cmp(&a.out_bandwidth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let advs: Vec<AdvId> = publishers.iter().map(|p| p.adv_id).collect();
        let rates: Vec<f64> = publishers.iter().map(|p| p.rate).collect();
        let last_msgs: Vec<u64> = publishers.iter().map(|p| p.last_msg_id.raw()).collect();
        let slots = (0..specs.len() * advs.len())
            .map(|_| FastSlot {
                epoch: 0,
                vec: ShiftingBitVector::new(1),
                ones: 0,
            })
            .collect();
        Self {
            brokers: specs
                .into_iter()
                .map(|spec| FastBroker {
                    spec,
                    out_used: 0.0,
                    in_rate: 0.0,
                    subs: 0,
                    picks: Vec::new(),
                })
                .collect(),
            advs,
            rates,
            last_msgs,
            slots,
            epoch: 0,

            or_scratch: Vec::new(),
        }
    }

    /// Packs units (already in [`pack_order`]) onto the brokers,
    /// resetting all per-pack state via the epoch bump. Decision-
    /// identical to [`RefPacker::pack_sorted`] over the same order.
    ///
    /// # Errors
    /// Fails with the subscriptions of the first unplaceable unit, or
    /// [`AllocError::NoBrokers`] when units exist but the pool is empty.
    pub(crate) fn pack<'x>(
        &mut self,
        units: impl Iterator<Item = &'x Arc<Unit>>,
    ) -> Result<(), AllocError> {
        self.epoch += 1;
        let n_advs = self.advs.len();
        for st in &mut self.brokers {
            st.out_used = 0.0;
            st.in_rate = 0.0;
            st.subs = 0;
            st.picks.clear();
        }
        let mut units = units;
        if self.brokers.is_empty() {
            return match units.next() {
                None => Ok(()),
                Some(_) => Err(AllocError::NoBrokers),
            };
        }
        'units: for unit in units {
            for (b, st) in self.brokers.iter_mut().enumerate() {
                // Cheap bandwidth check first — the dominant rejection.
                if st.out_used + unit.out_bandwidth >= st.spec.out_bandwidth {
                    continue;
                }
                // Incremental rate check replicating the reference
                // `estimate_rate_delta` f64 sequence, with the union's
                // cached popcount standing in for its `count_ones` walk.
                self.or_scratch.clear();
                // At most one entry per advertisement slot hit below.
                self.or_scratch.reserve(self.advs.len());
                let mut delta = 0.0;
                for (adv, o) in unit.profile.iter() {
                    let Ok(ai) = self.advs.binary_search(&adv) else {
                        continue;
                    };
                    let (rate, last) = match (self.rates.get(ai), self.last_msgs.get(ai)) {
                        (Some(r), Some(l)) => (*r, *l),
                        _ => continue,
                    };
                    let ones_new = o.count_ones();
                    if ones_new == 0 {
                        continue;
                    }
                    let fraction = |ones: usize, first: u64, cap: usize| -> f64 {
                        if ones == 0 {
                            return 0.0;
                        }
                        let observed = last
                            .saturating_sub(first)
                            .saturating_add(1)
                            .min(cap as u64)
                            .max(ones as u64);
                        ones as f64 / observed as f64
                    };
                    let si = b * n_advs + ai;
                    match self.slots.get(si).filter(|s| s.epoch == self.epoch) {
                        Some(s) => {
                            let old = fraction(s.ones, s.vec.first_id(), s.vec.capacity());
                            let c = s.vec.pair_cardinalities(o);
                            let new = fraction(
                                c.or,
                                s.vec.first_id().min(o.first_id()),
                                s.vec.capacity().max(o.capacity()),
                            );
                            self.or_scratch.push((si, c.or));
                            delta += (new - old) * rate;
                        }
                        None => {
                            delta += fraction(ones_new, o.first_id(), o.capacity()) * rate;
                        }
                    }
                }
                let in_rate = st.in_rate + delta;
                let max_rate = st.spec.matching_delay.max_rate(st.subs + unit.sub_count());
                if in_rate > max_rate {
                    continue;
                }
                // Accept: fold every publisher-backed window of the
                // unit into its slot (including empty windows — their
                // placement can widen a union window, which the
                // reference path's `or_assign` also does).
                for (adv, o) in unit.profile.iter() {
                    let Ok(ai) = self.advs.binary_search(&adv) else {
                        continue;
                    };
                    let si = b * n_advs + ai;
                    let Some(s) = self.slots.get_mut(si) else {
                        continue;
                    };
                    if s.epoch == self.epoch {
                        let lo = s.vec.first_id().min(o.first_id());
                        let hi_end = s.vec.window_end().max(o.window_end());
                        let truncated = hi_end - lo > s.vec.capacity() as u64;
                        s.vec.or_assign(o);
                        let cached = self
                            .or_scratch
                            .iter()
                            .find(|(i, _)| *i == si)
                            .map(|(_, or)| *or);
                        s.ones = match (truncated, cached) {
                            (false, Some(or)) => or,
                            _ => s.vec.count_ones(),
                        };
                    } else {
                        s.vec.copy_from(o);
                        s.ones = s.vec.count_ones();
                        s.epoch = self.epoch;
                    }
                }
                st.in_rate = in_rate;
                st.out_used += unit.out_bandwidth;
                st.subs += unit.sub_count();
                st.picks.push(Arc::clone(unit));
                continue 'units;
            }
            return Err(AllocError::Infeasible {
                subs: unit.subs.clone(),
            });
        }
        Ok(())
    }

    /// Number of brokers that received at least one unit in the most
    /// recent pack.
    pub(crate) fn used_brokers(&self) -> usize {
        self.brokers.iter().filter(|s| !s.picks.is_empty()).count()
    }

    /// Moves the most recent pack's per-broker placements (placement
    /// order preserved) into `out`, reusing its spine. Materializing an
    /// [`Allocation`] from this recipe — replaying the profile unions
    /// and bandwidth sums per broker — reproduces
    /// [`RefPacker::into_allocation`] bit-for-bit.
    pub(crate) fn drain_picks_into(&mut self, out: &mut Vec<(BrokerId, Vec<Arc<Unit>>)>) {
        out.clear();
        for st in &mut self.brokers {
            if !st.picks.is_empty() {
                out.push((st.spec.id, std::mem::take(&mut st.picks)));
            }
        }
    }
}

/// Runs a complete packing pass: places every unit in the given order,
/// polling `cancel` between units.
///
/// # Errors
/// Fails fast with the unit that could not be placed, mirroring the
/// paper's "the algorithm ends … if at least one subscription cannot be
/// allocated to any broker", or with [`AllocError::Cancelled`] when the
/// token trips mid-pass.
pub fn pack_all(
    brokers: &[BrokerSpec],
    publishers: &PublisherTable,
    units: impl IntoIterator<Item = Unit>,
    cancel: &CancelToken,
) -> Result<Allocation, AllocError> {
    let mut packer = Packer::new(brokers, publishers);
    for unit in units {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        packer.place(unit)?;
    }
    Ok(packer.into_allocation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearFn;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{AdvId, MsgId, SubId};

    fn publishers() -> PublisherTable {
        [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect()
    }

    fn unit(sub: u64, ids: &[u64], publishers: &PublisherTable) -> Unit {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(1), v);
        let load = p.estimate_load(publishers);
        Unit {
            subs: vec![SubId::new(sub)],
            profile: p,
            out_bandwidth: load.bandwidth,
        }
    }

    fn broker(id: u64, bw: f64) -> BrokerSpec {
        BrokerSpec::new(
            BrokerId::new(id),
            format!("b{id}"),
            LinearFn::new(0.0001, 0.0),
            bw,
        )
    }

    #[test]
    fn places_on_most_resourceful_first() {
        let pubs = publishers();
        let brokers = vec![broker(1, 10_000.0), broker(2, 50_000.0)];
        let mut packer = Packer::new(&brokers, &pubs);
        assert_eq!(packer.broker_count(), 2);
        let placed = packer.place(unit(1, &[0], &pubs)).unwrap();
        assert_eq!(placed, BrokerId::new(2), "most resourceful wins");
    }

    #[test]
    fn bandwidth_must_stay_strictly_positive() {
        let pubs = publishers();
        // unit uses 5% of 100kB/s = 5000 B/s; broker has exactly 5000.
        let brokers = vec![broker(1, 5_000.0)];
        let u = unit(1, &[0, 1, 2, 3, 4], &pubs);
        assert!((u.out_bandwidth - 5_000.0).abs() < 1e-9);
        let mut packer = Packer::new(&brokers, &pubs);
        assert!(!packer.fits(&u));
        assert!(matches!(
            packer.place(u),
            Err(AllocError::Infeasible { .. })
        ));
    }

    #[test]
    fn overflows_to_next_broker() {
        let pubs = publishers();
        let brokers = vec![broker(1, 12_000.0), broker(2, 12_000.0)];
        let mut packer = Packer::new(&brokers, &pubs);
        // each unit needs 10kB/s; first goes to b1, second to b2.
        let a = packer
            .place(unit(1, &(0..10).collect::<Vec<_>>(), &pubs))
            .unwrap();
        let b = packer
            .place(unit(2, &(10..20).collect::<Vec<_>>(), &pubs))
            .unwrap();
        assert_ne!(a, b);
        let alloc = packer.into_allocation();
        assert_eq!(alloc.broker_count(), 2);
    }

    #[test]
    fn matching_rate_constraint_limits_subscriptions() {
        let pubs = publishers();
        // 25 ms per message with one sub: max rate = 40 msg/s; a unit
        // inducing 50 msg/s (50 of 100 slots) cannot be hosted.
        let slow = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.025, 0.0), 1e9);
        let u = unit(1, &(0..50).collect::<Vec<_>>(), &pubs);
        let mut packer = Packer::new(&[slow], &pubs);
        assert!(packer.place(u).is_err());
        // 10 msg/s unit is fine.
        let mut packer = Packer::new(
            &[BrokerSpec::new(
                BrokerId::new(1),
                "b1",
                LinearFn::new(0.025, 0.0),
                1e9,
            )],
            &pubs,
        );
        assert!(packer
            .place(unit(2, &(0..10).collect::<Vec<_>>(), &pubs))
            .is_ok());
    }

    #[test]
    fn per_sub_delay_term_tightens_with_count() {
        let pubs = publishers();
        // base 10ms + 10ms/sub; two 1-sub units each inducing 30 msg/s
        // of *distinct* traffic: first fits (rate 30 <= 1/(0.02)=50),
        // second would make union rate 60 > 1/(0.03)=33 → second bounces.
        let b = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.01, 0.01), 1e9);
        let mut packer = Packer::new(&[b], &pubs);
        assert!(packer
            .place(unit(1, &(0..30).collect::<Vec<_>>(), &pubs))
            .is_ok());
        assert!(packer
            .place(unit(2, &(30..60).collect::<Vec<_>>(), &pubs))
            .is_err());
    }

    #[test]
    fn shared_traffic_does_not_double_count_input() {
        let pubs = publishers();
        // Two units with identical 40-slot profiles: union input stays
        // 40 msg/s, so both fit on a broker whose cap is 50 msg/s.
        let b = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.02, 0.0), 1e9);
        let mut packer = Packer::new(&[b], &pubs);
        let ids: Vec<u64> = (0..40).collect();
        assert!(packer.place(unit(1, &ids, &pubs)).is_ok());
        assert!(packer.place(unit(2, &ids, &pubs)).is_ok());
        let alloc = packer.into_allocation();
        assert_eq!(alloc.broker_count(), 1);
        let load = &alloc.loads[0];
        assert_eq!(load.sub_count(), 2);
        assert!((load.in_rate - 40.0).abs() < 1e-9);
        // output is per-copy: 2 × 40 kB/s
        assert!((load.out_bw_used - 80_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_pool_errors() {
        let pubs = publishers();
        let mut packer = Packer::new(&[], &pubs);
        assert_eq!(
            packer.place(unit(1, &[0], &pubs)),
            Err(AllocError::NoBrokers)
        );
    }

    /// Builds a unit with explicit per-publisher windows:
    /// `(adv, first_id, ids)` legs.
    fn multi_unit(sub: u64, legs: &[(u64, u64, Vec<u64>)], pubs: &PublisherTable) -> Unit {
        let mut p = SubscriptionProfile::with_capacity(100);
        for (adv, first, ids) in legs {
            let mut v = ShiftingBitVector::starting_at(100, *first);
            for &id in ids {
                v.record(id);
            }
            p.insert_vector(AdvId::new(*adv), v);
        }
        let load = p.estimate_load(pubs);
        Unit {
            subs: vec![SubId::new(sub)],
            profile: p,
            out_bandwidth: load.bandwidth.max(1_000.0) + sub as f64,
        }
    }

    fn two_publishers() -> PublisherTable {
        [
            PublisherProfile::new(AdvId::new(1), 100.0, 100_000.0, MsgId::new(99)),
            PublisherProfile::new(AdvId::new(2), 40.0, 20_000.0, MsgId::new(999)),
        ]
        .into_iter()
        .collect()
    }

    /// Units covering every delta-path branch: shared windows, shifted
    /// windows (forcing `or_assign` truncation), empty vectors, a
    /// publisher-less advertisement, and multi-publisher profiles.
    fn tricky_units(pubs: &PublisherTable) -> Vec<Arc<Unit>> {
        let mut units = vec![
            multi_unit(0, &[(1, 0, (0..30).collect())], pubs),
            multi_unit(
                1,
                &[(1, 0, (20..50).collect()), (2, 0, (0..80).collect())],
                pubs,
            ),
            multi_unit(2, &[(2, 900, (900..960).collect())], pubs),
            multi_unit(3, &[(1, 0, (0..10).collect()), (2, 0, vec![])], pubs),
            multi_unit(
                4,
                &[(2, 940, (950..999).collect()), (7, 0, (0..5).collect())],
                pubs,
            ),
            multi_unit(5, &[(1, 50, (50..90).collect())], pubs),
            multi_unit(6, &[(2, 0, (0..40).step_by(2).collect())], pubs),
        ];
        units.sort_by(pack_order);
        units.into_iter().map(Arc::new).collect()
    }

    /// FastPacker must reproduce RefPacker's decisions bit-for-bit —
    /// same placements, same running rates — across repeated packs of
    /// changing unit subsets on one persistent packer (the CRAM usage).
    #[test]
    fn fast_packer_matches_ref_packer_bit_for_bit() {
        let pubs = two_publishers();
        let units = tricky_units(&pubs);
        let brokers = vec![
            broker(1, 120_000.0),
            broker(2, 80_000.0),
            broker(3, 80_000.0),
        ];
        let mut fast = FastPacker::new(&brokers, &pubs);
        // Rounds drop a different unit each time, so slot state from the
        // previous pack must never leak into the next.
        for round in 0..=units.len() {
            let subset: Vec<&Arc<Unit>> = units
                .iter()
                .enumerate()
                .filter(|(i, _)| round == units.len() || *i != round)
                .map(|(_, u)| u)
                .collect();
            let mut reference = RefPacker::new(&brokers);
            let ref_result = reference.pack_sorted(&pubs, subset.iter().map(|u| &***u).collect());
            let fast_result = fast.pack(subset.iter().copied());
            assert_eq!(ref_result.is_ok(), fast_result.is_ok(), "round {round}");
            assert_eq!(
                reference.used_brokers(),
                fast.used_brokers(),
                "round {round}"
            );
            for (rs, fs) in reference.states.iter().zip(&fast.brokers) {
                assert_eq!(rs.spec.id, fs.spec.id);
                assert_eq!(
                    rs.in_rate.to_bits(),
                    fs.in_rate.to_bits(),
                    "round {round} broker {:?}",
                    rs.spec.id
                );
                assert_eq!(rs.out_used.to_bits(), fs.out_used.to_bits());
                assert_eq!(rs.subs, fs.subs);
                let ref_subs: Vec<_> = rs.units.iter().map(|u| u.subs.clone()).collect();
                let fast_subs: Vec<_> = fs.picks.iter().map(|u| u.subs.clone()).collect();
                assert_eq!(ref_subs, fast_subs, "round {round}");
            }
        }
    }

    /// Replaying a drained recipe (per-broker placement order) must
    /// reproduce `RefPacker::into_allocation` exactly.
    #[test]
    fn fast_packer_recipe_materializes_ref_allocation() {
        let pubs = two_publishers();
        let units = tricky_units(&pubs);
        let brokers = vec![
            broker(1, 120_000.0),
            broker(2, 80_000.0),
            broker(3, 80_000.0),
        ];
        let mut reference = RefPacker::new(&brokers);
        reference
            .pack_sorted(&pubs, units.iter().map(|u| &**u).collect())
            .unwrap();
        let expected = reference.into_allocation(&pubs);

        let mut fast = FastPacker::new(&brokers, &pubs);
        fast.pack(units.iter()).unwrap();
        let mut picks = Vec::new();
        fast.drain_picks_into(&mut picks);
        let loads: Vec<BrokerLoad> = picks
            .into_iter()
            .map(|(id, picked)| {
                let mut union = SubscriptionProfile::new();
                let mut out = 0.0;
                for u in &picked {
                    union.or_assign(&u.profile);
                    out += u.out_bandwidth;
                }
                let input = union.estimate_load(&pubs);
                BrokerLoad {
                    broker: id,
                    units: picked.iter().map(|u| (**u).clone()).collect(),
                    union_profile: union,
                    out_bw_used: out,
                    in_rate: input.rate,
                    in_bandwidth: input.bandwidth,
                }
            })
            .collect();
        assert_eq!(loads, expected.loads);
    }

    /// Both packers reject the same first unit with the same error.
    #[test]
    fn fast_packer_reports_identical_infeasibility() {
        let pubs = publishers();
        let brokers = vec![broker(1, 12_000.0)];
        let units: Vec<Arc<Unit>> = {
            let mut us = vec![
                unit(1, &(0..10).collect::<Vec<_>>(), &pubs),
                unit(2, &(10..20).collect::<Vec<_>>(), &pubs),
            ];
            us.sort_by(pack_order);
            us.into_iter().map(Arc::new).collect()
        };
        let mut reference = RefPacker::new(&brokers);
        let ref_err = reference
            .pack_sorted(&pubs, units.iter().map(|u| &**u).collect())
            .unwrap_err();
        let mut fast = FastPacker::new(&brokers, &pubs);
        let fast_err = fast.pack(units.iter()).unwrap_err();
        assert_eq!(ref_err, fast_err);
        // Empty pool: Ok for no units, NoBrokers otherwise.
        let mut empty = FastPacker::new(&[], &pubs);
        assert!(empty.pack(std::iter::empty()).is_ok());
        assert_eq!(empty.pack(units.iter()), Err(AllocError::NoBrokers));
    }

    #[test]
    fn pack_all_round_trip() {
        let pubs = publishers();
        let brokers = vec![broker(1, 1e6), broker(2, 1e6)];
        let units: Vec<Unit> = (0..5)
            .map(|i| unit(i, &[i * 2, i * 2 + 1], &pubs))
            .collect();
        let alloc = pack_all(&brokers, &pubs, units, &CancelToken::never()).unwrap();
        assert_eq!(alloc.sub_count(), 5);
        assert_eq!(
            alloc.broker_count(),
            1,
            "everything fits on the first broker"
        );
    }
}
