//! Capacity bookkeeping and the allocation feasibility test (paper
//! §IV-A).
//!
//! A broker "is deemed to have enough capacity to handle a subscription
//! only if by accepting this subscription, its remaining available
//! output bandwidth is greater than 0 and its incoming publication rate
//! is less than or equal to its maximum matching rate", where the
//! maximum matching rate is the inverse of the linear matching-delay
//! function.
//!
//! [`Packer`] holds the running state of one allocation attempt: brokers
//! sorted by resourcefulness (descending total output bandwidth), each
//! with its accumulated union profile, used output bandwidth and stored
//! subscription count. FBF, BIN PACKING and CRAM's allocation test all
//! place units through it.

use crate::model::{AllocError, Allocation, BrokerLoad, BrokerSpec, Unit};
use greenps_profile::{PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::BrokerId;

/// Running placement state of one broker during packing.
#[derive(Debug, Clone)]
struct BrokerState {
    spec: BrokerSpec,
    union: SubscriptionProfile,
    out_used: f64,
    subs: usize,
    units: Vec<Unit>,
}

impl BrokerState {
    fn new(spec: BrokerSpec) -> Self {
        Self {
            spec,
            union: SubscriptionProfile::new(),
            out_used: 0.0,
            subs: 0,
            units: Vec::new(),
        }
    }

    /// The feasibility test from the paper.
    fn can_accept(&self, unit: &Unit, publishers: &PublisherTable) -> bool {
        // Remaining output bandwidth must stay positive.
        if self.out_used + unit.out_bandwidth >= self.spec.out_bandwidth {
            return false;
        }
        // Incoming publication rate must not exceed the maximum
        // matching rate at the new subscription count.
        let in_rate = self
            .union
            .estimate_union_load(&unit.profile, publishers)
            .rate;
        let max_rate = self
            .spec
            .matching_delay
            .max_rate(self.subs + unit.sub_count());
        in_rate <= max_rate
    }

    fn accept(&mut self, unit: Unit) {
        self.union.or_assign(&unit.profile);
        self.out_used += unit.out_bandwidth;
        self.subs += unit.sub_count();
        self.units.push(unit);
    }
}

/// One allocation attempt over a broker pool.
#[derive(Debug, Clone)]
pub struct Packer<'p> {
    states: Vec<BrokerState>,
    publishers: &'p PublisherTable,
}

impl<'p> Packer<'p> {
    /// Creates a packer over the broker pool, sorted in descending order
    /// of total available output bandwidth (ties broken by id for
    /// determinism).
    pub fn new(brokers: &[BrokerSpec], publishers: &'p PublisherTable) -> Self {
        let mut specs: Vec<BrokerSpec> = brokers.to_vec();
        specs.sort_by(|a, b| {
            b.out_bandwidth
                .partial_cmp(&a.out_bandwidth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Self {
            states: specs.into_iter().map(BrokerState::new).collect(),
            publishers,
        }
    }

    /// Number of brokers in the pool.
    pub fn broker_count(&self) -> usize {
        self.states.len()
    }

    /// Places a unit on the most resourceful broker that can accept it.
    ///
    /// # Errors
    /// Returns [`AllocError::NoBrokers`] on an empty pool and
    /// [`AllocError::Infeasible`] when no broker passes the test.
    pub fn place(&mut self, unit: Unit) -> Result<BrokerId, AllocError> {
        if self.states.is_empty() {
            return Err(AllocError::NoBrokers);
        }
        for state in &mut self.states {
            if state.can_accept(&unit, self.publishers) {
                let id = state.spec.id;
                state.accept(unit);
                return Ok(id);
            }
        }
        Err(AllocError::Infeasible { subs: unit.subs })
    }

    /// True when at least one broker could accept the unit, without
    /// placing it.
    pub fn fits(&self, unit: &Unit) -> bool {
        self.states
            .iter()
            .any(|s| s.can_accept(unit, self.publishers))
    }

    /// Finalizes into an [`Allocation`] containing only brokers that
    /// received units.
    pub fn into_allocation(self) -> Allocation {
        let publishers = self.publishers;
        let loads = self
            .states
            .into_iter()
            .filter(|s| !s.units.is_empty())
            .map(|s| {
                let input = s.union.estimate_load(publishers);
                BrokerLoad {
                    broker: s.spec.id,
                    units: s.units,
                    union_profile: s.union,
                    out_bw_used: s.out_used,
                    in_rate: input.rate,
                    in_bandwidth: input.bandwidth,
                }
            })
            .collect();
        Allocation { loads }
    }
}

/// A feasibility-only packing pass over borrowed units: returns the
/// bandwidth-descending packing outcome without cloning any unit, or
/// the index of the first unplaceable unit. The CRAM allocation test
/// runs thousands of these per invocation; avoiding the per-test unit
/// clones is what keeps 8,000-subscription runs tractable.
#[derive(Debug)]
pub struct RefPacker<'u> {
    states: Vec<RefBrokerState<'u>>,
}

#[derive(Debug)]
struct RefBrokerState<'u> {
    spec: BrokerSpec,
    union: SubscriptionProfile,
    /// Running estimate of the union profile's input rate.
    in_rate: f64,
    out_used: f64,
    subs: usize,
    units: Vec<&'u Unit>,
}

impl<'u> RefPacker<'u> {
    /// Creates a reference packer over a broker pool (same ordering as
    /// [`Packer`]).
    pub fn new(brokers: &[BrokerSpec]) -> Self {
        let mut specs: Vec<BrokerSpec> = brokers.to_vec();
        specs.sort_by(|a, b| {
            b.out_bandwidth
                .partial_cmp(&a.out_bandwidth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Self {
            states: specs
                .into_iter()
                .map(|spec| RefBrokerState {
                    spec,
                    union: SubscriptionProfile::new(),
                    in_rate: 0.0,
                    out_used: 0.0,
                    subs: 0,
                    units: Vec::new(),
                })
                .collect(),
        }
    }

    /// Packs borrowed units in descending bandwidth order.
    ///
    /// # Errors
    /// Fails with the subscriptions of the first unplaceable unit.
    pub fn pack_sorted(
        &mut self,
        publishers: &PublisherTable,
        mut units: Vec<&'u Unit>,
    ) -> Result<(), AllocError> {
        if self.states.is_empty() {
            return if units.is_empty() {
                Ok(())
            } else {
                Err(AllocError::NoBrokers)
            };
        }
        units.sort_by(|a, b| {
            b.out_bandwidth
                .total_cmp(&a.out_bandwidth)
                .then_with(|| a.subs.cmp(&b.subs))
        });
        'units: for unit in units {
            for state in &mut self.states {
                // Cheap bandwidth check first — the dominant rejection.
                if state.out_used + unit.out_bandwidth >= state.spec.out_bandwidth {
                    continue;
                }
                // Incremental rate check: only the unit's publishers
                // can change the union rate.
                let delta = state.union.estimate_rate_delta(&unit.profile, publishers);
                let in_rate = state.in_rate + delta;
                let max_rate = state
                    .spec
                    .matching_delay
                    .max_rate(state.subs + unit.sub_count());
                if in_rate > max_rate {
                    continue;
                }
                state.union.or_assign(&unit.profile);
                state.in_rate = in_rate;
                state.out_used += unit.out_bandwidth;
                state.subs += unit.sub_count();
                state.units.push(unit);
                continue 'units;
            }
            return Err(AllocError::Infeasible {
                subs: unit.subs.clone(),
            });
        }
        Ok(())
    }

    /// Number of brokers that received at least one unit.
    pub fn used_brokers(&self) -> usize {
        self.states.iter().filter(|s| !s.units.is_empty()).count()
    }

    /// Materializes a full [`Allocation`] (clones the packed units).
    pub fn into_allocation(self, publishers: &PublisherTable) -> Allocation {
        let loads = self
            .states
            .into_iter()
            .filter(|s| !s.units.is_empty())
            .map(|s| {
                let input = s.union.estimate_load(publishers);
                BrokerLoad {
                    broker: s.spec.id,
                    units: s.units.into_iter().cloned().collect(),
                    union_profile: s.union,
                    out_bw_used: s.out_used,
                    in_rate: input.rate,
                    in_bandwidth: input.bandwidth,
                }
            })
            .collect();
        Allocation { loads }
    }
}

/// Runs a complete packing pass: places every unit in the given order.
///
/// # Errors
/// Fails fast with the unit that could not be placed, mirroring the
/// paper's "the algorithm ends … if at least one subscription cannot be
/// allocated to any broker".
pub fn pack_all(
    brokers: &[BrokerSpec],
    publishers: &PublisherTable,
    units: impl IntoIterator<Item = Unit>,
) -> Result<Allocation, AllocError> {
    let mut packer = Packer::new(brokers, publishers);
    for unit in units {
        packer.place(unit)?;
    }
    Ok(packer.into_allocation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearFn;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{AdvId, MsgId, SubId};

    fn publishers() -> PublisherTable {
        [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect()
    }

    fn unit(sub: u64, ids: &[u64], publishers: &PublisherTable) -> Unit {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(1), v);
        let load = p.estimate_load(publishers);
        Unit {
            subs: vec![SubId::new(sub)],
            profile: p,
            out_bandwidth: load.bandwidth,
        }
    }

    fn broker(id: u64, bw: f64) -> BrokerSpec {
        BrokerSpec::new(
            BrokerId::new(id),
            format!("b{id}"),
            LinearFn::new(0.0001, 0.0),
            bw,
        )
    }

    #[test]
    fn places_on_most_resourceful_first() {
        let pubs = publishers();
        let brokers = vec![broker(1, 10_000.0), broker(2, 50_000.0)];
        let mut packer = Packer::new(&brokers, &pubs);
        assert_eq!(packer.broker_count(), 2);
        let placed = packer.place(unit(1, &[0], &pubs)).unwrap();
        assert_eq!(placed, BrokerId::new(2), "most resourceful wins");
    }

    #[test]
    fn bandwidth_must_stay_strictly_positive() {
        let pubs = publishers();
        // unit uses 5% of 100kB/s = 5000 B/s; broker has exactly 5000.
        let brokers = vec![broker(1, 5_000.0)];
        let u = unit(1, &[0, 1, 2, 3, 4], &pubs);
        assert!((u.out_bandwidth - 5_000.0).abs() < 1e-9);
        let mut packer = Packer::new(&brokers, &pubs);
        assert!(!packer.fits(&u));
        assert!(matches!(
            packer.place(u),
            Err(AllocError::Infeasible { .. })
        ));
    }

    #[test]
    fn overflows_to_next_broker() {
        let pubs = publishers();
        let brokers = vec![broker(1, 12_000.0), broker(2, 12_000.0)];
        let mut packer = Packer::new(&brokers, &pubs);
        // each unit needs 10kB/s; first goes to b1, second to b2.
        let a = packer
            .place(unit(1, &(0..10).collect::<Vec<_>>(), &pubs))
            .unwrap();
        let b = packer
            .place(unit(2, &(10..20).collect::<Vec<_>>(), &pubs))
            .unwrap();
        assert_ne!(a, b);
        let alloc = packer.into_allocation();
        assert_eq!(alloc.broker_count(), 2);
    }

    #[test]
    fn matching_rate_constraint_limits_subscriptions() {
        let pubs = publishers();
        // 25 ms per message with one sub: max rate = 40 msg/s; a unit
        // inducing 50 msg/s (50 of 100 slots) cannot be hosted.
        let slow = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.025, 0.0), 1e9);
        let u = unit(1, &(0..50).collect::<Vec<_>>(), &pubs);
        let mut packer = Packer::new(&[slow], &pubs);
        assert!(packer.place(u).is_err());
        // 10 msg/s unit is fine.
        let mut packer = Packer::new(
            &[BrokerSpec::new(
                BrokerId::new(1),
                "b1",
                LinearFn::new(0.025, 0.0),
                1e9,
            )],
            &pubs,
        );
        assert!(packer
            .place(unit(2, &(0..10).collect::<Vec<_>>(), &pubs))
            .is_ok());
    }

    #[test]
    fn per_sub_delay_term_tightens_with_count() {
        let pubs = publishers();
        // base 10ms + 10ms/sub; two 1-sub units each inducing 30 msg/s
        // of *distinct* traffic: first fits (rate 30 <= 1/(0.02)=50),
        // second would make union rate 60 > 1/(0.03)=33 → second bounces.
        let b = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.01, 0.01), 1e9);
        let mut packer = Packer::new(&[b], &pubs);
        assert!(packer
            .place(unit(1, &(0..30).collect::<Vec<_>>(), &pubs))
            .is_ok());
        assert!(packer
            .place(unit(2, &(30..60).collect::<Vec<_>>(), &pubs))
            .is_err());
    }

    #[test]
    fn shared_traffic_does_not_double_count_input() {
        let pubs = publishers();
        // Two units with identical 40-slot profiles: union input stays
        // 40 msg/s, so both fit on a broker whose cap is 50 msg/s.
        let b = BrokerSpec::new(BrokerId::new(1), "b1", LinearFn::new(0.02, 0.0), 1e9);
        let mut packer = Packer::new(&[b], &pubs);
        let ids: Vec<u64> = (0..40).collect();
        assert!(packer.place(unit(1, &ids, &pubs)).is_ok());
        assert!(packer.place(unit(2, &ids, &pubs)).is_ok());
        let alloc = packer.into_allocation();
        assert_eq!(alloc.broker_count(), 1);
        let load = &alloc.loads[0];
        assert_eq!(load.sub_count(), 2);
        assert!((load.in_rate - 40.0).abs() < 1e-9);
        // output is per-copy: 2 × 40 kB/s
        assert!((load.out_bw_used - 80_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_pool_errors() {
        let pubs = publishers();
        let mut packer = Packer::new(&[], &pubs);
        assert_eq!(
            packer.place(unit(1, &[0], &pubs)),
            Err(AllocError::NoBrokers)
        );
    }

    #[test]
    fn pack_all_round_trip() {
        let pubs = publishers();
        let brokers = vec![broker(1, 1e6), broker(2, 1e6)];
        let units: Vec<Unit> = (0..5)
            .map(|i| unit(i, &[i * 2, i * 2 + 1], &pubs))
            .collect();
        let alloc = pack_all(&brokers, &pubs, units).unwrap();
        assert_eq!(alloc.sub_count(), 5);
        assert_eq!(
            alloc.broker_count(),
            1,
            "everything fits on the first broker"
        );
    }
}
