//! CROC planning: the end-to-end composition of Phases 2 and 3 plus
//! GRAPE into a reconfiguration plan.
//!
//! This module is pure computation: it consumes the information gathered
//! in Phase 1 (an [`AllocationInput`]) and produces a
//! [`ReconfigurationPlan`] — the new broker tree, where every
//! subscription must migrate, and where every publisher should connect.
//! The messaging side of CROC (BIR/BIA gathering and plan execution)
//! lives in `greenps-broker`.

use crate::cram::{CramBuilder, CramConfig, CramStats};
use crate::grape::{place_publishers_cancellable, GrapeConfig, InterestTree};
use crate::model::{AllocError, Allocation, AllocationInput};
use crate::overlay::{
    build_overlay_cancellable, AllocatorKind, Overlay, OverlayConfig, OverlayError,
};
use crate::pipeline::artifact::{
    allocation_from_json, allocation_to_json, arr_field, cram_stats_from_json, cram_stats_to_json,
    field, overlay_from_json, overlay_to_json, u64_field,
};
use crate::pipeline::json::JsonValue;
use crate::pipeline::{
    Artifact, ArtifactError, Phase, PhaseKind, Pipeline, PipelineError, ReconfigContext,
};
use crate::sorting::{bin_packing_cancellable, fbf_cancellable};
use greenps_pubsub::ids::{AdvId, BrokerId, SubId};
use greenps_telemetry::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Full CROC configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Overlay construction settings; its allocator also drives Phase 2
    /// so that the whole scheme stays consistent.
    pub overlay: OverlayConfig,
    /// GRAPE publisher-relocation settings.
    pub grape: GrapeConfig,
}

impl PlanConfig {
    /// The paper's recommended configuration: CRAM with a metric, all
    /// optimizations, load-minimizing GRAPE.
    pub fn cram(metric: greenps_profile::ClosenessMetric) -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::Cram(CramConfig::with_metric(metric))),
            grape: GrapeConfig::minimize_load(),
        }
    }

    /// BIN PACKING without clustering.
    pub fn bin_packing() -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::BinPacking),
            grape: GrapeConfig::minimize_load(),
        }
    }

    /// FBF with a shuffle seed.
    pub fn fbf(seed: u64) -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::Fbf { seed }),
            grape: GrapeConfig::minimize_load(),
        }
    }
}

/// The outcome of Phases 2–3 plus GRAPE.
#[derive(Debug, Clone)]
pub struct ReconfigurationPlan {
    /// Phase-2 allocation (leaf layer).
    pub allocation: Allocation,
    /// Phase-3 broker tree.
    pub overlay: Overlay,
    /// Where each subscription must migrate.
    pub subscription_homes: BTreeMap<SubId, BrokerId>,
    /// Where each publisher should connect (GRAPE).
    pub publisher_homes: BTreeMap<AdvId, BrokerId>,
    /// CRAM statistics when CRAM was the allocator.
    pub cram_stats: Option<CramStats>,
}

impl ReconfigurationPlan {
    /// Number of brokers in the new deployment.
    pub fn broker_count(&self) -> usize {
        self.overlay.broker_count()
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Phase-2 allocation failed.
    Alloc(AllocError),
    /// Phase-3 construction failed.
    Overlay(OverlayError),
    /// The subscription pool was empty — nothing to plan.
    NoSubscriptions,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Alloc(e) => write!(f, "phase 2 failed: {e}"),
            PlanError::Overlay(e) => write!(f, "phase 3 failed: {e}"),
            PlanError::NoSubscriptions => f.write_str("subscription pool is empty"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<AllocError> for PlanError {
    fn from(e: AllocError) -> Self {
        PlanError::Alloc(e)
    }
}

impl From<OverlayError> for PlanError {
    fn from(e: OverlayError) -> Self {
        PlanError::Overlay(e)
    }
}

/// The Phase-2 result: the allocation plus CRAM counters when CRAM ran.
///
/// This is the artifact the pipeline checkpoints between allocation and
/// overlay construction.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAllocation {
    /// The leaf-layer allocation.
    pub allocation: Allocation,
    /// CRAM statistics, when CRAM was the allocator.
    pub cram_stats: Option<CramStats>,
}

impl Artifact for PlannedAllocation {
    const KIND: &'static str = "planned-allocation";

    fn to_json(&self) -> JsonValue {
        let obj = JsonValue::obj().field("allocation", allocation_to_json(&self.allocation));
        match &self.cram_stats {
            Some(stats) => obj.field("cram_stats", cram_stats_to_json(stats)),
            None => obj,
        }
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        Ok(PlannedAllocation {
            allocation: allocation_from_json(field(value, "allocation")?)?,
            cram_stats: match value.get("cram_stats") {
                Some(stats) => Some(cram_stats_from_json(stats)?),
                None => None,
            },
        })
    }
}

impl Artifact for ReconfigurationPlan {
    const KIND: &'static str = "reconfiguration-plan";

    fn to_json(&self) -> JsonValue {
        let homes = |pairs: Vec<(u64, u64)>| {
            JsonValue::Arr(
                pairs
                    .into_iter()
                    .map(|(k, b)| {
                        JsonValue::obj()
                            .field("id", JsonValue::U64(k))
                            .field("broker", JsonValue::U64(b))
                    })
                    .collect(),
            )
        };
        let obj = JsonValue::obj()
            .field("allocation", allocation_to_json(&self.allocation))
            .field("overlay", overlay_to_json(&self.overlay))
            .field(
                "subscription_homes",
                homes(
                    self.subscription_homes
                        .iter()
                        .map(|(s, b)| (s.raw(), b.raw()))
                        .collect(),
                ),
            )
            .field(
                "publisher_homes",
                homes(
                    self.publisher_homes
                        .iter()
                        .map(|(a, b)| (a.raw(), b.raw()))
                        .collect(),
                ),
            );
        match &self.cram_stats {
            Some(stats) => obj.field("cram_stats", cram_stats_to_json(stats)),
            None => obj,
        }
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        let subscription_homes = arr_field(value, "subscription_homes")?
            .iter()
            .map(|entry| {
                Ok((
                    SubId::new(u64_field(entry, "id")?),
                    BrokerId::new(u64_field(entry, "broker")?),
                ))
            })
            .collect::<Result<BTreeMap<_, _>, ArtifactError>>()?;
        let mut publisher_homes = BTreeMap::new();
        for entry in arr_field(value, "publisher_homes")? {
            publisher_homes.insert(
                AdvId::new(u64_field(entry, "id")?),
                BrokerId::new(u64_field(entry, "broker")?),
            );
        }
        Ok(ReconfigurationPlan {
            allocation: allocation_from_json(field(value, "allocation")?)?,
            overlay: overlay_from_json(field(value, "overlay")?)?,
            subscription_homes,
            publisher_homes,
            cram_stats: match value.get("cram_stats") {
                Some(stats) => Some(cram_stats_from_json(stats)?),
                None => None,
            },
        })
    }
}

/// Runs Phase 2: groups subscriptions and allocates brokers with the
/// configured allocator, under the `phase2.allocation` span.
///
/// # Errors
/// Fails on an empty subscription pool or an infeasible allocation.
pub fn allocate(
    input: &AllocationInput,
    config: &PlanConfig,
    ctx: &ReconfigContext,
) -> Result<PlannedAllocation, PlanError> {
    if input.subscriptions.is_empty() {
        return Err(PlanError::NoSubscriptions);
    }
    let registry = ctx.registry();
    let _span = Span::enter(registry, "phase2.allocation");
    let mut cram_stats = None;
    let cancel = ctx.cancel_token();
    let allocation = match &config.overlay.allocator {
        AllocatorKind::Fbf { seed } => fbf_cancellable(input, *seed, &cancel)?,
        AllocatorKind::BinPacking => bin_packing_cancellable(input, &cancel)?,
        AllocatorKind::Cram(cfg) => {
            let (a, stats) = CramBuilder::from_config(*cfg)
                .telemetry(registry)
                .threads(ctx.threads())
                .cancel_token(&cancel)
                .run(input)?;
            cram_stats = Some(stats);
            a
        }
    };
    Ok(PlannedAllocation {
        allocation,
        cram_stats,
    })
}

/// Runs Phase 3 computation on an existing allocation: overlay
/// construction (`phase3.overlay` span) plus GRAPE publisher relocation
/// (`grape` span).
///
/// # Errors
/// Fails when overlay construction fails.
pub fn finish_plan(
    input: &AllocationInput,
    planned: PlannedAllocation,
    config: &PlanConfig,
    ctx: &ReconfigContext,
) -> Result<ReconfigurationPlan, PlanError> {
    let registry = ctx.registry();
    let cancel = ctx.cancel_token();
    let overlay = {
        let _span = Span::enter(registry, "phase3.overlay");
        build_overlay_cancellable(input, &planned.allocation, &config.overlay, &cancel)?
    };
    let subscription_homes = overlay.subscription_homes();
    let publisher_homes = {
        let _span = Span::enter(registry, "grape");
        let tree = InterestTree::from_overlay_cancellable(&overlay, &cancel)?;
        place_publishers_cancellable(&tree, &input.publishers, config.grape, &cancel)?
    };
    Ok(ReconfigurationPlan {
        allocation: planned.allocation,
        overlay,
        subscription_homes,
        publisher_homes,
        cram_stats: planned.cram_stats,
    })
}

/// The pipeline's `Allocate` stage: [`allocate`] as a checkpointable
/// [`Phase`].
#[derive(Debug)]
pub struct AllocatePhase<'a> {
    /// The gathered Phase-1 input.
    pub input: &'a AllocationInput,
    /// The planning configuration.
    pub config: PlanConfig,
}

impl Phase for AllocatePhase<'_> {
    type Input = ();
    type Output = PlannedAllocation;
    const KIND: PhaseKind = PhaseKind::Allocate;

    fn run(
        &mut self,
        _input: (),
        ctx: &ReconfigContext,
    ) -> Result<PlannedAllocation, PipelineError> {
        allocate(self.input, &self.config, ctx).map_err(PipelineError::Plan)
    }
}

/// The pipeline's `BuildOverlay` stage: [`finish_plan`] as a
/// checkpointable [`Phase`].
#[derive(Debug)]
pub struct BuildOverlayPhase<'a> {
    /// The gathered Phase-1 input.
    pub input: &'a AllocationInput,
    /// The planning configuration.
    pub config: PlanConfig,
}

impl Phase for BuildOverlayPhase<'_> {
    type Input = PlannedAllocation;
    type Output = ReconfigurationPlan;
    const KIND: PhaseKind = PhaseKind::BuildOverlay;

    fn run(
        &mut self,
        planned: PlannedAllocation,
        ctx: &ReconfigContext,
    ) -> Result<ReconfigurationPlan, PipelineError> {
        finish_plan(self.input, planned, &self.config, ctx).map_err(PipelineError::Plan)
    }
}

/// Runs Phase 2 (allocation), Phase 3 (overlay construction) and GRAPE
/// through the checkpointable pipeline, under `ctx`.
///
/// Telemetry is observation only: the plan is bit-identical with any
/// registry, including the disabled default of
/// [`ReconfigContext::new`].
///
/// # Errors
/// Propagates allocation/overlay failures; fails on an empty
/// subscription pool or a cancelled context.
pub fn plan(
    input: &AllocationInput,
    config: &PlanConfig,
    ctx: &ReconfigContext,
) -> Result<ReconfigurationPlan, PipelineError> {
    let mut pipeline = Pipeline::new(ctx.clone());
    plan_phases(&mut pipeline, input, config)
}

/// [`plan`] against a caller-owned [`Pipeline`], so interrupted plans
/// checkpoint and resume.
///
/// # Errors
/// Same as [`plan`].
pub fn plan_phases(
    pipeline: &mut Pipeline,
    input: &AllocationInput,
    config: &PlanConfig,
) -> Result<ReconfigurationPlan, PipelineError> {
    let planned = pipeline.run_phase(
        &mut AllocatePhase {
            input,
            config: *config,
        },
        (),
    )?;
    pipeline.run_phase(
        &mut BuildOverlayPhase {
            input,
            config: *config,
        },
        planned,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use greenps_profile::{
        ClosenessMetric, PublisherProfile, PublisherTable, ShiftingBitVector, SubscriptionProfile,
    };
    use greenps_pubsub::ids::MsgId;
    use greenps_pubsub::Filter;

    fn input() -> AllocationInput {
        let publishers: PublisherTable = [
            PublisherProfile::new(AdvId::new(1), 50.0, 50_000.0, MsgId::new(99)),
            PublisherProfile::new(AdvId::new(2), 50.0, 50_000.0, MsgId::new(99)),
        ]
        .into_iter()
        .collect();
        let subscriptions = (0..10u64)
            .map(|i| {
                let adv = 1 + (i % 2);
                let mut v = ShiftingBitVector::starting_at(100, 0);
                for id in 0..30 {
                    v.record(id);
                }
                let mut p = SubscriptionProfile::with_capacity(100);
                p.insert_vector(AdvId::new(adv), v);
                SubscriptionEntry::new(SubId::new(i), Filter::new(), p)
            })
            .collect();
        let brokers = (0..12u64)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0001, 0.0),
                    50_000.0,
                )
            })
            .collect();
        AllocationInput {
            brokers,
            subscriptions,
            publishers,
        }
    }

    #[test]
    fn cram_plan_end_to_end() {
        let inp = input();
        let plan = plan(
            &inp,
            &PlanConfig::cram(ClosenessMetric::Ios),
            &ReconfigContext::new(),
        )
        .unwrap();
        assert_eq!(plan.subscription_homes.len(), 10);
        assert_eq!(plan.publisher_homes.len(), 2);
        assert!(plan.cram_stats.is_some());
        plan.overlay.check_tree();
        // Every home is a broker in the overlay.
        for b in plan.subscription_homes.values() {
            assert!(plan.overlay.node(*b).is_some());
        }
        for b in plan.publisher_homes.values() {
            assert!(plan.overlay.node(*b).is_some());
        }
        assert!(plan.broker_count() <= inp.brokers.len());
    }

    #[test]
    fn bin_packing_and_fbf_plans_work() {
        let inp = input();
        for cfg in [PlanConfig::bin_packing(), PlanConfig::fbf(7)] {
            let plan = plan(&inp, &cfg, &ReconfigContext::new()).unwrap();
            assert_eq!(plan.subscription_homes.len(), 10);
            assert!(plan.cram_stats.is_none());
        }
    }

    #[test]
    fn empty_pool_is_an_error() {
        let mut inp = input();
        inp.subscriptions.clear();
        assert!(matches!(
            plan(&inp, &PlanConfig::bin_packing(), &ReconfigContext::new()),
            Err(PipelineError::Plan(PlanError::NoSubscriptions))
        ));
    }

    #[test]
    fn infeasible_input_propagates() {
        let mut inp = input();
        for b in &mut inp.brokers {
            b.out_bandwidth = 10.0;
        }
        assert!(matches!(
            plan(&inp, &PlanConfig::bin_packing(), &ReconfigContext::new()),
            Err(PipelineError::Plan(PlanError::Alloc(_)))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            PlanError::NoSubscriptions.to_string(),
            "subscription pool is empty"
        );
        let e = PlanError::Alloc(AllocError::NoBrokers);
        assert_eq!(e.to_string(), "phase 2 failed: broker pool is empty");
    }
}
