//! CROC planning: the end-to-end composition of Phases 2 and 3 plus
//! GRAPE into a reconfiguration plan.
//!
//! This module is pure computation: it consumes the information gathered
//! in Phase 1 (an [`AllocationInput`]) and produces a
//! [`ReconfigurationPlan`] — the new broker tree, where every
//! subscription must migrate, and where every publisher should connect.
//! The messaging side of CROC (BIR/BIA gathering and plan execution)
//! lives in `greenps-broker`.

use crate::cram::{CramBuilder, CramConfig, CramStats};
use crate::grape::{place_publishers, GrapeConfig, InterestTree};
use crate::model::{AllocError, Allocation, AllocationInput};
use crate::overlay::{build_overlay, AllocatorKind, Overlay, OverlayConfig, OverlayError};
use crate::sorting::{bin_packing, fbf};
use greenps_pubsub::ids::{AdvId, BrokerId, SubId};
use greenps_telemetry::{Registry, Span};
use std::collections::BTreeMap;
use std::fmt;

/// Full CROC configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Overlay construction settings; its allocator also drives Phase 2
    /// so that the whole scheme stays consistent.
    pub overlay: OverlayConfig,
    /// GRAPE publisher-relocation settings.
    pub grape: GrapeConfig,
}

impl PlanConfig {
    /// The paper's recommended configuration: CRAM with a metric, all
    /// optimizations, load-minimizing GRAPE.
    pub fn cram(metric: greenps_profile::ClosenessMetric) -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::Cram(CramConfig::with_metric(metric))),
            grape: GrapeConfig::minimize_load(),
        }
    }

    /// BIN PACKING without clustering.
    pub fn bin_packing() -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::BinPacking),
            grape: GrapeConfig::minimize_load(),
        }
    }

    /// FBF with a shuffle seed.
    pub fn fbf(seed: u64) -> Self {
        Self {
            overlay: OverlayConfig::new(AllocatorKind::Fbf { seed }),
            grape: GrapeConfig::minimize_load(),
        }
    }
}

/// The outcome of Phases 2–3 plus GRAPE.
#[derive(Debug, Clone)]
pub struct ReconfigurationPlan {
    /// Phase-2 allocation (leaf layer).
    pub allocation: Allocation,
    /// Phase-3 broker tree.
    pub overlay: Overlay,
    /// Where each subscription must migrate.
    pub subscription_homes: BTreeMap<SubId, BrokerId>,
    /// Where each publisher should connect (GRAPE).
    pub publisher_homes: BTreeMap<AdvId, BrokerId>,
    /// CRAM statistics when CRAM was the allocator.
    pub cram_stats: Option<CramStats>,
}

impl ReconfigurationPlan {
    /// Number of brokers in the new deployment.
    pub fn broker_count(&self) -> usize {
        self.overlay.broker_count()
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Phase-2 allocation failed.
    Alloc(AllocError),
    /// Phase-3 construction failed.
    Overlay(OverlayError),
    /// The subscription pool was empty — nothing to plan.
    NoSubscriptions,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Alloc(e) => write!(f, "phase 2 failed: {e}"),
            PlanError::Overlay(e) => write!(f, "phase 3 failed: {e}"),
            PlanError::NoSubscriptions => f.write_str("subscription pool is empty"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<AllocError> for PlanError {
    fn from(e: AllocError) -> Self {
        PlanError::Alloc(e)
    }
}

impl From<OverlayError> for PlanError {
    fn from(e: OverlayError) -> Self {
        PlanError::Overlay(e)
    }
}

/// Runs Phase 2 (allocation), Phase 3 (overlay construction) and GRAPE.
///
/// # Errors
/// Propagates allocation/overlay failures; fails on an empty
/// subscription pool.
pub fn plan(
    input: &AllocationInput,
    config: &PlanConfig,
) -> Result<ReconfigurationPlan, PlanError> {
    plan_with_telemetry(input, config, &Registry::disabled())
}

/// [`plan`] with phase spans (`phase2.allocation`, `phase3.overlay`,
/// `grape`) and allocator telemetry recorded into `registry`.
///
/// [`PlanConfig`] stays `Copy`, so the registry rides alongside it
/// rather than inside it. Telemetry is observation only: the plan is
/// bit-identical with any registry, including [`Registry::disabled`]
/// (which makes this function exactly [`plan`]).
///
/// # Errors
/// Same as [`plan`].
pub fn plan_with_telemetry(
    input: &AllocationInput,
    config: &PlanConfig,
    registry: &Registry,
) -> Result<ReconfigurationPlan, PlanError> {
    if input.subscriptions.is_empty() {
        return Err(PlanError::NoSubscriptions);
    }
    let mut cram_stats = None;
    let allocation = {
        let _span = Span::enter(registry, "phase2.allocation");
        match &config.overlay.allocator {
            AllocatorKind::Fbf { seed } => fbf(input, *seed)?,
            AllocatorKind::BinPacking => bin_packing(input)?,
            AllocatorKind::Cram(cfg) => {
                let (a, stats) = CramBuilder::from_config(*cfg)
                    .telemetry(registry)
                    .run(input)?;
                cram_stats = Some(stats);
                a
            }
        }
    };
    let overlay = {
        let _span = Span::enter(registry, "phase3.overlay");
        build_overlay(input, &allocation, &config.overlay)?
    };
    let subscription_homes = overlay.subscription_homes();
    let publisher_homes = {
        let _span = Span::enter(registry, "grape");
        let tree = InterestTree::from_overlay(&overlay);
        place_publishers(&tree, &input.publishers, config.grape)
    };
    Ok(ReconfigurationPlan {
        allocation,
        overlay,
        subscription_homes,
        publisher_homes,
        cram_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerSpec, LinearFn, SubscriptionEntry};
    use greenps_profile::{
        ClosenessMetric, PublisherProfile, PublisherTable, ShiftingBitVector, SubscriptionProfile,
    };
    use greenps_pubsub::ids::MsgId;
    use greenps_pubsub::Filter;

    fn input() -> AllocationInput {
        let publishers: PublisherTable = [
            PublisherProfile::new(AdvId::new(1), 50.0, 50_000.0, MsgId::new(99)),
            PublisherProfile::new(AdvId::new(2), 50.0, 50_000.0, MsgId::new(99)),
        ]
        .into_iter()
        .collect();
        let subscriptions = (0..10u64)
            .map(|i| {
                let adv = 1 + (i % 2);
                let mut v = ShiftingBitVector::starting_at(100, 0);
                for id in 0..30 {
                    v.record(id);
                }
                let mut p = SubscriptionProfile::with_capacity(100);
                p.insert_vector(AdvId::new(adv), v);
                SubscriptionEntry::new(SubId::new(i), Filter::new(), p)
            })
            .collect();
        let brokers = (0..12u64)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0001, 0.0),
                    50_000.0,
                )
            })
            .collect();
        AllocationInput {
            brokers,
            subscriptions,
            publishers,
        }
    }

    #[test]
    fn cram_plan_end_to_end() {
        let inp = input();
        let plan = plan(&inp, &PlanConfig::cram(ClosenessMetric::Ios)).unwrap();
        assert_eq!(plan.subscription_homes.len(), 10);
        assert_eq!(plan.publisher_homes.len(), 2);
        assert!(plan.cram_stats.is_some());
        plan.overlay.check_tree();
        // Every home is a broker in the overlay.
        for b in plan.subscription_homes.values() {
            assert!(plan.overlay.node(*b).is_some());
        }
        for b in plan.publisher_homes.values() {
            assert!(plan.overlay.node(*b).is_some());
        }
        assert!(plan.broker_count() <= inp.brokers.len());
    }

    #[test]
    fn bin_packing_and_fbf_plans_work() {
        let inp = input();
        for cfg in [PlanConfig::bin_packing(), PlanConfig::fbf(7)] {
            let plan = plan(&inp, &cfg).unwrap();
            assert_eq!(plan.subscription_homes.len(), 10);
            assert!(plan.cram_stats.is_none());
        }
    }

    #[test]
    fn empty_pool_is_an_error() {
        let mut inp = input();
        inp.subscriptions.clear();
        assert!(matches!(
            plan(&inp, &PlanConfig::bin_packing()),
            Err(PlanError::NoSubscriptions)
        ));
    }

    #[test]
    fn infeasible_input_propagates() {
        let mut inp = input();
        for b in &mut inp.brokers {
            b.out_bandwidth = 10.0;
        }
        assert!(matches!(
            plan(&inp, &PlanConfig::bin_packing()),
            Err(PlanError::Alloc(_))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            PlanError::NoSubscriptions.to_string(),
            "subscription pool is empty"
        );
        let e = PlanError::Alloc(AllocError::NoBrokers);
        assert_eq!(e.to_string(), "phase 2 failed: broker pool is empty");
    }
}
