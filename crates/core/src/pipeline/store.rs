//! In-memory, JSON-exportable checkpoint storage.
//!
//! Each completed phase saves its artifact here under the phase name.
//! The whole store exports to a single JSON document (schema tag
//! `greenps-checkpoint/1`) and imports back losslessly, so an
//! interrupted run can be resumed from disk in another process.

use super::artifact::{Artifact, ArtifactError};
use super::json::{self, JsonValue};
use super::PhaseKind;
use std::collections::BTreeMap;

/// Version tag written into every exported checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "greenps-checkpoint/1";

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    kind: String,
    value: JsonValue,
}

/// Phase-name → artifact storage for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointStore {
    entries: BTreeMap<String, Entry>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpointed phases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no phase has checkpointed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `phase` has a checkpoint.
    pub fn contains(&self, phase: PhaseKind) -> bool {
        self.entries.contains_key(phase.name())
    }

    /// The checkpointed phases in pipeline order.
    pub fn completed(&self) -> Vec<PhaseKind> {
        PhaseKind::ALL
            .iter()
            .copied()
            .filter(|p| self.contains(*p))
            .collect()
    }

    /// The latest checkpointed phase in pipeline order, if any.
    pub fn latest(&self) -> Option<PhaseKind> {
        PhaseKind::ALL
            .iter()
            .copied()
            .rev()
            .find(|p| self.contains(*p))
    }

    /// Saves (or replaces) the artifact for `phase`.
    pub fn save<A: Artifact>(&mut self, phase: PhaseKind, artifact: &A) {
        self.entries.insert(
            phase.name().to_string(),
            Entry {
                kind: A::KIND.to_string(),
                value: artifact.to_json(),
            },
        );
    }

    /// Loads the artifact for `phase`, if checkpointed.
    ///
    /// # Errors
    /// Fails when the stored artifact kind does not match `A` or the
    /// payload does not decode.
    pub fn load<A: Artifact>(&self, phase: PhaseKind) -> Result<Option<A>, ArtifactError> {
        let Some(entry) = self.entries.get(phase.name()) else {
            return Ok(None);
        };
        if entry.kind != A::KIND {
            return Err(ArtifactError::new(format!(
                "phase `{}` holds a `{}` artifact, expected `{}`",
                phase.name(),
                entry.kind,
                A::KIND
            )));
        }
        A::from_json(&entry.value).map(Some)
    }

    /// Drops the checkpoint for `phase` (and returns whether one
    /// existed).
    pub fn remove(&mut self, phase: PhaseKind) -> bool {
        self.entries.remove(phase.name()).is_some()
    }

    /// Exports the store as one deterministic JSON document.
    pub fn to_json(&self) -> String {
        let phases = self
            .entries
            .iter()
            .fold(JsonValue::obj(), |obj, (name, e)| {
                obj.field(
                    name,
                    JsonValue::obj()
                        .field("kind", JsonValue::string(&e.kind))
                        .field("artifact", e.value.clone()),
                )
            });
        JsonValue::obj()
            .field("schema", JsonValue::string(CHECKPOINT_SCHEMA))
            .field("phases", phases)
            .to_string()
    }

    /// Imports a document produced by [`CheckpointStore::to_json`].
    ///
    /// # Errors
    /// Fails on malformed JSON, a wrong schema tag, or an unknown phase
    /// name.
    pub fn from_json(src: &str) -> Result<Self, ArtifactError> {
        let doc = json::parse(src)?;
        let schema = super::artifact::str_field(&doc, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(ArtifactError::new(format!(
                "unsupported checkpoint schema `{schema}` (expected `{CHECKPOINT_SCHEMA}`)"
            )));
        }
        let JsonValue::Obj(pairs) = super::artifact::field(&doc, "phases")? else {
            return Err(ArtifactError::new("`phases` is not an object"));
        };
        let mut store = CheckpointStore::new();
        for (name, entry) in pairs {
            if !PhaseKind::ALL.iter().any(|p| p.name() == name) {
                return Err(ArtifactError::new(format!("unknown phase `{name}`")));
            }
            store.entries.insert(
                name.clone(),
                Entry {
                    kind: super::artifact::str_field(entry, "kind")?.to_string(),
                    value: super::artifact::field(entry, "artifact")?.clone(),
                },
            );
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AllocationInput;
    use greenps_profile::PublisherTable;

    fn tiny_input() -> AllocationInput {
        AllocationInput {
            brokers: Vec::new(),
            subscriptions: Vec::new(),
            publishers: PublisherTable::new(),
        }
    }

    #[test]
    fn save_load_contains() {
        let mut store = CheckpointStore::new();
        assert!(store.is_empty());
        assert!(store
            .load::<AllocationInput>(PhaseKind::Gather)
            .unwrap()
            .is_none());
        store.save(PhaseKind::Gather, &tiny_input());
        assert!(store.contains(PhaseKind::Gather));
        assert_eq!(store.len(), 1);
        assert_eq!(store.completed(), vec![PhaseKind::Gather]);
        assert_eq!(store.latest(), Some(PhaseKind::Gather));
        let back = store
            .load::<AllocationInput>(PhaseKind::Gather)
            .unwrap()
            .unwrap();
        assert!(back.brokers.is_empty());
        assert!(store.remove(PhaseKind::Gather));
        assert!(store.is_empty());
    }

    #[test]
    fn json_export_round_trips() {
        let mut store = CheckpointStore::new();
        store.save(PhaseKind::Gather, &tiny_input());
        let text = store.to_json();
        assert!(text.contains(CHECKPOINT_SCHEMA));
        assert!(text.contains("\"gather\""));
        let back = CheckpointStore::from_json(&text).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.to_json(), text, "export is byte-stable");
    }

    #[test]
    fn wrong_schema_and_unknown_phase_fail() {
        assert!(CheckpointStore::from_json("{}").is_err());
        assert!(CheckpointStore::from_json(r#"{"schema":"other/9","phases":{}}"#).is_err());
        assert!(CheckpointStore::from_json(
            r#"{"schema":"greenps-checkpoint/1","phases":{"warp":{"kind":"x","artifact":{}}}}"#
        )
        .is_err());
    }

    #[test]
    fn kind_mismatch_fails_loudly() {
        let mut store = CheckpointStore::new();
        store.save(PhaseKind::Gather, &tiny_input());
        // Loading the same phase as a different artifact type must fail.
        #[derive(Debug)]
        struct Fake;
        impl Artifact for Fake {
            const KIND: &'static str = "fake";
            fn to_json(&self) -> JsonValue {
                JsonValue::obj()
            }
            fn from_json(_: &JsonValue) -> Result<Self, ArtifactError> {
                Ok(Fake)
            }
        }
        let err = store.load::<Fake>(PhaseKind::Gather).unwrap_err();
        assert!(err.to_string().contains("allocation-input"));
    }
}
