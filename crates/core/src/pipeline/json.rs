//! Minimal deterministic JSON tree for checkpoint artifacts.
//!
//! The vendored `serde` is a marker-only stub, so checkpoint
//! serialization is hand-rolled: a small [`JsonValue`] tree with a
//! byte-stable writer and a panic-free recursive-descent parser.
//! Objects keep insertion order on write, so encoding the same artifact
//! twice produces identical bytes. Floats are carried as JSON *strings*
//! holding Rust's shortest round-trip `Display` form, which is both
//! human-readable and bit-exact when parsed back with `str::parse`.

use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer. Every integer in a checkpoint fits `u64`;
    /// the parser rejects signs and fractions (floats travel as
    /// strings).
    U64(u64),
    /// A string; also the carrier for `f64` values.
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object as insertion-ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Appends a key/value pair (no-op on non-objects) and returns the
    /// object, builder style.
    #[must_use]
    pub fn field(mut self, key: &str, value: JsonValue) -> JsonValue {
        if let JsonValue::Obj(pairs) = &mut self {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Encodes an `f64` as its shortest round-trip decimal string.
    pub fn from_f64(v: f64) -> JsonValue {
        JsonValue::Str(format!("{v}"))
    }

    /// Encodes a string.
    pub fn string(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Decodes an `f64` carried as a string (see [`JsonValue::from_f64`]).
    pub fn as_f64(&self) -> Option<f64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes into `out`. Byte-stable: equal trees produce equal
    /// text.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value (with optional surrounding whitespace).
///
/// # Errors
/// Fails on malformed input, trailing garbage, negative or fractional
/// number literals, and integers that overflow `u64`.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    match p.peek() {
        None => Ok(v),
        Some(_) => Err(p.err("trailing characters after the value")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), JsonError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(want))))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') if self.eat_word("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(JsonValue::Bool(false)),
            Some(_) => Err(self.err("expected a value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let mut n: u64 = 0;
        let mut digits = 0usize;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.pos += 1;
            digits += 1;
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| self.err("integer overflows u64"))?;
        }
        if digits == 0 {
            return Err(self.err("expected a digit"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional numbers are not used here; floats travel as strings"));
        }
        Ok(JsonValue::U64(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) if b < 0x80 => out.push(char::from(b)),
                Some(_) => {
                    // Multi-byte UTF-8: the source is a valid `&str`, so
                    // re-decode the full character from the byte slice.
                    let start = self.pos - 1;
                    let rest = self
                        .bytes
                        .get(start..)
                        .and_then(|tail| std::str::from_utf8(tail).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            code = code * 16 + d;
        }
        char::from_u32(code).ok_or_else(|| self.err("\\u escape is not a scalar value"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["true", "false", "0", "42", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn nested_round_trip_is_byte_stable() {
        let v = JsonValue::obj()
            .field("a", JsonValue::U64(7))
            .field(
                "b",
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::string("x")]),
            )
            .field("c", JsonValue::obj().field("d", JsonValue::U64(0)));
        let text = v.to_string();
        assert_eq!(text, r#"{"a":7,"b":[true,"x"],"c":{"d":0}}"#);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn floats_survive_exactly() {
        for f in [
            0.0,
            -0.0,
            1.5,
            0.1,
            1e300,
            -3.25e-17,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let v = JsonValue::from_f64(f);
            let back = parse(&v.to_string()).unwrap();
            let g = back.as_f64().unwrap();
            assert_eq!(f.to_bits(), g.to_bits(), "{f}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}π✓";
        let text = JsonValue::string(s).to_string();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
        assert_eq!(parse("\"\\u00e9\\u2713\"").unwrap().as_str(), Some("é✓"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"f":"2.5","ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        for src in [
            "",
            "tru",
            "[1,",
            "{\"a\":}",
            "\"abc",
            "1.5",
            "-3",
            "1e9",
            "{\"a\" 1}",
            "[] []",
            "99999999999999999999999999",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":{}}"#);
    }
}
