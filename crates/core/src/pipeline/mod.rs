//! The checkpointable reconfiguration pipeline.
//!
//! The paper's CROC loop is one coherent sequence — Phase 1 gathering,
//! Phase 2 allocation, Phase 3 overlay construction and deployment,
//! then measurement — but production reconfiguration must survive
//! interruption mid-loop. This module provides the machinery:
//!
//! * [`ReconfigContext`] — the one context every layer takes (telemetry
//!   registry, seed, thread budget, cancellation flag).
//! * [`Phase`] — a typed pipeline stage whose output is a serializable
//!   [`Artifact`].
//! * [`Pipeline`] — the orchestrator: runs phases in order, records a
//!   `pipeline.phase.*` span per executed phase, checkpoints every
//!   output into a [`CheckpointStore`], and replays checkpointed phases
//!   bit-identically on [`Pipeline::resume`].
//!
//! Concrete phases live next to the code they orchestrate: allocation
//! and overlay construction in [`crate::croc`], gathering / deployment
//! / measurement in `greenps-workload`.

pub mod artifact;
pub mod json;

mod context;
mod store;

pub use artifact::{Artifact, ArtifactError};
pub use context::{CancelToken, ReconfigContext, TransportChoice};
pub use store::{CheckpointStore, CHECKPOINT_SCHEMA};

use crate::croc::PlanError;
use greenps_telemetry::{Registry, Span};
use std::fmt;

/// The five stages of a reconfiguration run, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Phase 1: profile the live deployment and gather BIAs.
    Gather,
    /// Phase 2: group subscriptions and allocate brokers.
    Allocate,
    /// Phase 2 (hierarchical): per-zone CRAM runs plus the recursive
    /// cross-zone pass ([`crate::zones`]). An alternative to
    /// [`PhaseKind::Allocate`] for zone-sharded workloads.
    ZonedAllocate,
    /// Phase 3a: build the broker tree and relocate publishers.
    BuildOverlay,
    /// Phase 3b: compute the new placement to deploy.
    Deploy,
    /// Measure the reconfigured deployment.
    Measure,
}

impl PhaseKind {
    /// All phases in pipeline order.
    pub const ALL: [PhaseKind; 6] = [
        PhaseKind::Gather,
        PhaseKind::Allocate,
        PhaseKind::ZonedAllocate,
        PhaseKind::BuildOverlay,
        PhaseKind::Deploy,
        PhaseKind::Measure,
    ];

    /// The stable snake_case name used for checkpoint keys and span
    /// suffixes.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Gather => "gather",
            PhaseKind::Allocate => "allocate",
            PhaseKind::ZonedAllocate => "zoned_allocate",
            PhaseKind::BuildOverlay => "build_overlay",
            PhaseKind::Deploy => "deploy",
            PhaseKind::Measure => "measure",
        }
    }
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed pipeline stage.
///
/// A phase owns its configuration (and any borrowed inputs that earlier
/// phases do not produce); `Input` is the upstream artifact threaded
/// through [`Pipeline::run_phase`], and `Output` is what gets
/// checkpointed.
pub trait Phase {
    /// Upstream value fed into [`Phase::run`] (often a previous phase's
    /// output, `()` for sources).
    type Input;
    /// The checkpointable result of this phase.
    type Output: Artifact;
    /// Which pipeline stage this is.
    const KIND: PhaseKind;

    /// Executes the phase.
    ///
    /// # Errors
    /// Phase-specific failures; the pipeline stops at the first error.
    fn run(
        &mut self,
        input: Self::Input,
        ctx: &ReconfigContext,
    ) -> Result<Self::Output, PipelineError>;
}

/// Errors from driving a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The context was cancelled before `phase` could start.
    Cancelled {
        /// The phase that was about to run.
        phase: PhaseKind,
    },
    /// Planning (Phase 2/3 computation) failed.
    Plan(PlanError),
    /// A checkpoint could not be decoded (corrupt or mismatched store).
    Artifact(ArtifactError),
    /// Any other phase failure, with the failing phase named.
    Phase {
        /// The phase that failed.
        phase: PhaseKind,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cancelled { phase } => {
                write!(f, "pipeline cancelled before phase `{phase}`")
            }
            PipelineError::Plan(e) => write!(f, "planning failed: {e}"),
            PipelineError::Artifact(e) => write!(f, "checkpoint replay failed: {e}"),
            PipelineError::Phase { phase, message } => {
                write!(f, "phase `{phase}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PlanError> for PipelineError {
    fn from(e: PlanError) -> Self {
        PipelineError::Plan(e)
    }
}

impl From<ArtifactError> for PipelineError {
    fn from(e: ArtifactError) -> Self {
        PipelineError::Artifact(e)
    }
}

/// Enters the per-phase span. Names are literal so the telemetry-schema
/// lint sees every `pipeline.phase.*` registration.
fn phase_span(registry: &Registry, kind: PhaseKind) -> Span {
    match kind {
        PhaseKind::Gather => Span::enter(registry, "pipeline.phase.gather"),
        PhaseKind::Allocate => Span::enter(registry, "pipeline.phase.allocate"),
        PhaseKind::ZonedAllocate => Span::enter(registry, "pipeline.phase.zoned_allocate"),
        PhaseKind::BuildOverlay => Span::enter(registry, "pipeline.phase.build_overlay"),
        PhaseKind::Deploy => Span::enter(registry, "pipeline.phase.deploy"),
        PhaseKind::Measure => Span::enter(registry, "pipeline.phase.measure"),
    }
}

/// Drives phases in order, checkpointing each output and replaying
/// checkpointed phases on resume.
///
/// The pipeline also keeps a private always-on timing registry so
/// callers can read back per-phase wall time ([`Pipeline::phase_nanos`])
/// without the deterministic layers ever touching a wall clock
/// themselves.
#[derive(Debug)]
pub struct Pipeline {
    ctx: ReconfigContext,
    store: CheckpointStore,
    timing: Registry,
    stop_after: Option<PhaseKind>,
}

impl Pipeline {
    /// A fresh pipeline with an empty checkpoint store.
    pub fn new(ctx: ReconfigContext) -> Self {
        Self {
            ctx,
            store: CheckpointStore::new(),
            timing: Registry::new(),
            stop_after: None,
        }
    }

    /// A pipeline that replays `store`'s checkpoints instead of
    /// re-running their phases, then continues live from the first
    /// missing one.
    pub fn resume(ctx: ReconfigContext, store: CheckpointStore) -> Self {
        Self {
            ctx,
            store,
            timing: Registry::new(),
            stop_after: None,
        }
    }

    /// Cancels the run right after `phase` checkpoints (builder style) —
    /// the interruption half of an interrupt/resume cycle.
    #[must_use]
    pub fn stop_after(mut self, phase: PhaseKind) -> Self {
        self.stop_after = Some(phase);
        self
    }

    /// The context this pipeline runs under.
    pub fn ctx(&self) -> &ReconfigContext {
        &self.ctx
    }

    /// The checkpoints accumulated so far.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Consumes the pipeline, yielding its checkpoint store.
    pub fn into_store(self) -> CheckpointStore {
        self.store
    }

    /// Wall time spent *executing* `phase` in this pipeline (zero for
    /// phases replayed from checkpoints).
    pub fn phase_nanos(&self, phase: PhaseKind) -> u64 {
        let name = match phase {
            PhaseKind::Gather => "pipeline.phase.gather",
            PhaseKind::Allocate => "pipeline.phase.allocate",
            PhaseKind::ZonedAllocate => "pipeline.phase.zoned_allocate",
            PhaseKind::BuildOverlay => "pipeline.phase.build_overlay",
            PhaseKind::Deploy => "pipeline.phase.deploy",
            PhaseKind::Measure => "pipeline.phase.measure",
        };
        self.timing
            .snapshot()
            .spans
            .get(name)
            .map_or(0, |s| s.wall_nanos)
    }

    /// Runs (or replays) one phase.
    ///
    /// A checkpointed phase is decoded and returned without executing —
    /// bit-identical to the original output — and counted on
    /// `pipeline.checkpoint.hits`. Otherwise the phase executes under a
    /// `pipeline.phase.<name>` span, its output checkpoints into the
    /// store, and `pipeline.checkpoint.misses` is counted.
    ///
    /// # Errors
    /// Fails when the context is cancelled, a checkpoint fails to
    /// decode, or the phase itself fails.
    pub fn run_phase<P: Phase>(
        &mut self,
        phase: &mut P,
        input: P::Input,
    ) -> Result<P::Output, PipelineError> {
        let kind = P::KIND;
        if self.ctx.is_cancelled() {
            return Err(PipelineError::Cancelled { phase: kind });
        }
        if let Some(output) = self.store.load::<P::Output>(kind)? {
            self.ctx
                .registry()
                .counter("pipeline.checkpoint.hits")
                .inc();
            return Ok(output);
        }
        self.ctx
            .registry()
            .counter("pipeline.checkpoint.misses")
            .inc();
        let span = phase_span(self.ctx.registry(), kind);
        let timing = phase_span(&self.timing, kind);
        let output = phase.run(input, &self.ctx)?;
        timing.finish();
        span.finish();
        self.store.save(kind, &output);
        if self.stop_after == Some(kind) {
            self.ctx.cancel();
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Doubled(u64);

    impl Artifact for Doubled {
        const KIND: &'static str = "doubled";
        fn to_json(&self) -> JsonValue {
            JsonValue::obj().field("n", JsonValue::U64(self.0))
        }
        fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
            Ok(Doubled(artifact::u64_field(value, "n")?))
        }
    }

    /// A fake Gather phase that doubles its input and counts executions.
    struct DoublePhase {
        runs: usize,
    }

    impl Phase for DoublePhase {
        type Input = u64;
        type Output = Doubled;
        const KIND: PhaseKind = PhaseKind::Gather;
        fn run(&mut self, input: u64, _ctx: &ReconfigContext) -> Result<Doubled, PipelineError> {
            self.runs += 1;
            Ok(Doubled(input * 2))
        }
    }

    #[test]
    fn phase_kind_names_and_order() {
        assert_eq!(PhaseKind::ALL.len(), 6);
        assert_eq!(PhaseKind::BuildOverlay.to_string(), "build_overlay");
        assert_eq!(PhaseKind::ZonedAllocate.to_string(), "zoned_allocate");
        assert!(PhaseKind::Gather < PhaseKind::Measure);
        assert!(PhaseKind::Allocate < PhaseKind::ZonedAllocate);
        assert!(PhaseKind::ZonedAllocate < PhaseKind::BuildOverlay);
    }

    #[test]
    fn run_checkpoint_resume_replays_without_executing() {
        let registry = greenps_telemetry::Registry::new();
        let ctx = ReconfigContext::new().with_registry(&registry);
        let mut pipeline = Pipeline::new(ctx);
        let mut phase = DoublePhase { runs: 0 };
        let out = pipeline.run_phase(&mut phase, 21).unwrap();
        assert_eq!(out, Doubled(42));
        assert_eq!(phase.runs, 1);
        assert!(pipeline.store().contains(PhaseKind::Gather));
        assert!(pipeline.phase_nanos(PhaseKind::Gather) > 0);

        // Resume from the exported store: the phase must NOT run again,
        // and the replayed artifact is identical.
        let text = pipeline.into_store().to_json();
        let store = CheckpointStore::from_json(&text).unwrap();
        let mut resumed = Pipeline::resume(ReconfigContext::new().with_registry(&registry), store);
        let replayed = resumed.run_phase(&mut phase, 999).unwrap();
        assert_eq!(replayed, Doubled(42), "input ignored on replay");
        assert_eq!(phase.runs, 1, "phase did not execute");
        assert_eq!(resumed.phase_nanos(PhaseKind::Gather), 0);

        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("pipeline.checkpoint.misses"), Some(&1));
        assert_eq!(snap.counters.get("pipeline.checkpoint.hits"), Some(&1));
        assert!(snap.spans.contains_key("pipeline.phase.gather"));
    }

    #[test]
    fn stop_after_cancels_later_phases() {
        let ctx = ReconfigContext::new();
        let mut pipeline = Pipeline::new(ctx).stop_after(PhaseKind::Gather);
        let mut phase = DoublePhase { runs: 0 };
        pipeline.run_phase(&mut phase, 1).unwrap();
        assert!(pipeline.ctx().is_cancelled());
        let err = pipeline.run_phase(&mut phase, 2).unwrap_err();
        assert!(matches!(err, PipelineError::Cancelled { .. }));
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn error_display_and_conversions() {
        let e: PipelineError = PlanError::NoSubscriptions.into();
        assert!(e.to_string().contains("planning failed"));
        let e: PipelineError = ArtifactError::new("boom").into();
        assert!(e.to_string().contains("boom"));
        let e = PipelineError::Phase {
            phase: PhaseKind::Deploy,
            message: "no brokers".into(),
        };
        assert!(e.to_string().contains("deploy"));
    }
}
