//! The one context every reconfiguration layer receives.
//!
//! [`ReconfigContext`] bundles the cross-cutting run parameters —
//! telemetry registry, deterministic seed, thread budget, cancellation
//! flag — that used to be threaded through ad-hoc per-function twins.
//! Clones share the cancellation flag and the registry, so a context
//! can be handed to every phase (and every thread) of a run.

use greenps_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, cheap enough to poll per loop iteration.
///
/// The token is a clonable handle on one `AtomicBool`; every clone
/// observes the same flag. All accesses use `Relaxed` ordering: the
/// flag is a pure boolean signal that carries no payload, so no other
/// memory needs to be ordered around it — the worst case is one extra
/// loop iteration before a store becomes visible, which the
/// wave-granularity stop-latency contract already tolerates. `Relaxed`
/// keeps the hot-path poll a plain load with no fence, which is what
/// lets [`CancelToken::is_cancelled_hot`] live inside per-subscription
/// loops (it is declared allocation-free in `analysis/hot-paths.txt`).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that is never cancelled. Used by the non-cancellable
    /// convenience wrappers so the polled loops still compile to a
    /// single always-false load.
    pub fn never() -> Self {
        Self::default()
    }

    /// Trips the flag; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clears the flag (e.g. before resuming from a checkpoint).
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Hot-path poll: a single relaxed load, no fence, no allocation.
    #[inline]
    pub fn is_cancelled_hot(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Which transport backend the Deploy/Measure phases should run the
/// broker overlay on.
///
/// The reconfiguration algorithms themselves are transport-blind; this
/// choice only selects how the measurement harness carries broker
/// messages (DESIGN.md §13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportChoice {
    /// The deterministic discrete-event simulator — bit-identical runs,
    /// virtual time. The default, and the only backend used by the
    /// repeatability suites.
    #[default]
    Sim,
    /// Real loopback TCP sockets with one thread per connection:
    /// wall-clock time, actual kernel queues, epoch-fenced sessions.
    TcpLoopback,
}

/// Shared per-run context: telemetry, seed, thread budget, cancellation.
///
/// Telemetry is observation only — a run with an enabled registry is
/// bit-identical to one with [`Registry::disabled`]. The default
/// context is exactly that: untraced, seed 1, single-threaded.
#[derive(Debug, Clone)]
pub struct ReconfigContext {
    registry: Registry,
    seed: u64,
    threads: usize,
    cancel: CancelToken,
    transport: TransportChoice,
}

impl Default for ReconfigContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ReconfigContext {
    /// An untraced, single-threaded context with seed 1.
    pub fn new() -> Self {
        Self {
            registry: Registry::disabled(),
            seed: 1,
            threads: 1,
            cancel: CancelToken::new(),
            transport: TransportChoice::Sim,
        }
    }

    /// Selects the transport backend for deployment phases (builder
    /// style). Pure simulation phases ignore it.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportChoice) -> Self {
        self.transport = transport;
        self
    }

    /// The transport backend deployment phases should use.
    pub fn transport(&self) -> TransportChoice {
        self.transport
    }

    /// Replaces the telemetry registry (builder style).
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Replaces the deterministic seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the thread budget (builder style); 0 is clamped to 1.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The telemetry registry for this run.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The deterministic seed for placements and shuffles.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread budget for parallel stages (at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A fresh RNG seeded from [`ReconfigContext::seed`]; every call
    /// returns an identical stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Requests cancellation: the next poll point stops the run.
    /// Visible through every clone of this context and every token
    /// handed out by [`ReconfigContext::cancel_token`]. Relaxed store;
    /// see [`CancelToken`] for why no stronger ordering is needed.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Clears a previous cancellation request (e.g. before resuming).
    pub fn clear_cancel(&self) {
        self.cancel.clear();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled_hot()
    }

    /// Hot-path alias of [`ReconfigContext::is_cancelled`]: a single
    /// relaxed load, declared allocation-free in
    /// `analysis/hot-paths.txt`.
    #[inline]
    pub fn is_cancelled_hot(&self) -> bool {
        self.cancel.is_cancelled_hot()
    }

    /// A token sharing this context's cancellation flag, for threading
    /// into allocator internals that should not see the full context.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn defaults() {
        let ctx = ReconfigContext::default();
        assert!(!ctx.registry().is_enabled());
        assert_eq!(ctx.seed(), 1);
        assert_eq!(ctx.threads(), 1);
        assert!(!ctx.is_cancelled());
        assert_eq!(ctx.transport(), TransportChoice::Sim);
    }

    #[test]
    fn transport_choice_is_a_plain_setting() {
        let ctx = ReconfigContext::new().with_transport(TransportChoice::TcpLoopback);
        assert_eq!(ctx.transport(), TransportChoice::TcpLoopback);
        assert_eq!(ctx.clone().transport(), TransportChoice::TcpLoopback);
    }

    #[test]
    fn builders_and_rng_determinism() {
        let reg = Registry::new();
        let ctx = ReconfigContext::new()
            .with_registry(&reg)
            .with_seed(42)
            .with_threads(0);
        assert!(ctx.registry().is_enabled());
        assert_eq!(ctx.threads(), 1, "0 clamps to 1");
        assert_eq!(ctx.rng().next_u64(), ctx.rng().next_u64());
        assert_ne!(
            ctx.rng().next_u64(),
            ctx.clone().with_seed(43).rng().next_u64()
        );
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let ctx = ReconfigContext::new();
        let clone = ctx.clone();
        clone.cancel();
        assert!(ctx.is_cancelled());
        assert!(ctx.is_cancelled_hot());
        ctx.clear_cancel();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn cancel_token_shares_the_context_flag() {
        let ctx = ReconfigContext::new();
        let token = ctx.cancel_token();
        assert!(!token.is_cancelled_hot());
        ctx.cancel();
        assert!(token.is_cancelled_hot(), "token sees context cancel");
        token.clear();
        assert!(!ctx.is_cancelled(), "context sees token clear");
        token.cancel();
        assert!(ctx.is_cancelled_hot());
        assert!(!CancelToken::never().is_cancelled_hot());
    }
}
