//! Serializable phase artifacts.
//!
//! Every pipeline phase output implements [`Artifact`]: a conversion to
//! and from the checkpoint [`JsonValue`] tree. Encoding is
//! deterministic (BTreeMap-ordered collections, insertion-ordered
//! objects) and lossless — `from_json(to_json(x)) == x` bit-for-bit,
//! including every `f64` (carried as shortest round-trip decimal
//! strings, see [`JsonValue::from_f64`]).
//!
//! This module owns the codecs for the core model types; higher layers
//! (e.g. `greenps-workload`) build their artifacts out of the public
//! field helpers below.

use super::json::JsonValue;
use crate::cram::CramStats;
use crate::model::{
    Allocation, AllocationInput, BrokerLoad, BrokerSpec, LinearFn, SubscriptionEntry, Unit,
};
use crate::overlay::{Overlay, OverlayNode, OverlayStats};
use greenps_profile::{PublisherProfile, PublisherTable, ShiftingBitVector, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps_pubsub::parser::parse_filter;
use greenps_pubsub::Filter;
use std::fmt;

/// A decode failure: which field or structure was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError {
    message: String,
}

impl ArtifactError {
    /// Creates an error with a description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact decode failed: {}", self.message)
    }
}

impl std::error::Error for ArtifactError {}

impl From<super::json::JsonError> for ArtifactError {
    fn from(e: super::json::JsonError) -> Self {
        ArtifactError::new(e.to_string())
    }
}

/// A checkpointable phase output: a named kind plus a lossless JSON
/// codec.
pub trait Artifact: Sized {
    /// Stable artifact-kind tag recorded next to the payload, so a
    /// checkpoint loaded for the wrong phase fails loudly instead of
    /// decoding garbage.
    const KIND: &'static str;

    /// Encodes the artifact. Deterministic: equal values produce equal
    /// trees (and therefore equal bytes).
    fn to_json(&self) -> JsonValue;

    /// Decodes an artifact previously produced by [`Artifact::to_json`].
    ///
    /// # Errors
    /// Fails on missing fields, wrong types, or values violating the
    /// type's invariants.
    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError>;
}

// ---------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------

/// Looks up a required object field.
///
/// # Errors
/// Fails when `value` is not an object or lacks `key`.
pub fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ArtifactError> {
    value
        .get(key)
        .ok_or_else(|| ArtifactError::new(format!("missing field `{key}`")))
}

/// Reads a required `u64` field.
///
/// # Errors
/// Fails when the field is missing or not an integer.
pub fn u64_field(value: &JsonValue, key: &str) -> Result<u64, ArtifactError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| ArtifactError::new(format!("field `{key}` is not an integer")))
}

/// Reads a required `usize` field.
///
/// # Errors
/// Fails when the field is missing, not an integer, or overflows
/// `usize`.
pub fn usize_field(value: &JsonValue, key: &str) -> Result<usize, ArtifactError> {
    usize::try_from(u64_field(value, key)?)
        .map_err(|_| ArtifactError::new(format!("field `{key}` overflows usize")))
}

/// Reads a required `f64` field (carried as a string, see
/// [`JsonValue::from_f64`]).
///
/// # Errors
/// Fails when the field is missing or does not parse as a float.
pub fn f64_field(value: &JsonValue, key: &str) -> Result<f64, ArtifactError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| ArtifactError::new(format!("field `{key}` is not a float string")))
}

/// Reads a required `bool` field.
///
/// # Errors
/// Fails when the field is missing or not a boolean.
pub fn bool_field(value: &JsonValue, key: &str) -> Result<bool, ArtifactError> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| ArtifactError::new(format!("field `{key}` is not a boolean")))
}

/// Reads a required string field.
///
/// # Errors
/// Fails when the field is missing or not a string.
pub fn str_field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, ArtifactError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| ArtifactError::new(format!("field `{key}` is not a string")))
}

/// Reads a required array field.
///
/// # Errors
/// Fails when the field is missing or not an array.
pub fn arr_field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ArtifactError> {
    field(value, key)?
        .as_arr()
        .ok_or_else(|| ArtifactError::new(format!("field `{key}` is not an array")))
}

/// Encodes a sequence of ids as a JSON array of raw integers.
pub fn ids_to_json<I: Into<u64>>(ids: impl IntoIterator<Item = I>) -> JsonValue {
    JsonValue::Arr(ids.into_iter().map(|i| JsonValue::U64(i.into())).collect())
}

/// Decodes an array of raw integers into ids.
///
/// # Errors
/// Fails when an element is not an integer.
pub fn ids_from_json<I: From<u64>>(items: &[JsonValue]) -> Result<Vec<I>, ArtifactError> {
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .map(I::from)
                .ok_or_else(|| ArtifactError::new("id is not an integer"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Profile-layer codecs
// ---------------------------------------------------------------------

/// Encodes a shifting bit vector as `{capacity, first_id, ids}`.
pub fn bitvec_to_json(v: &ShiftingBitVector) -> JsonValue {
    JsonValue::obj()
        .field("capacity", JsonValue::U64(v.capacity() as u64))
        .field("first_id", JsonValue::U64(v.first_id()))
        .field("ids", ids_to_json(v.iter_ids()))
}

/// Decodes a shifting bit vector.
///
/// # Errors
/// Fails on missing fields, a zero capacity, or ids outside the window.
pub fn bitvec_from_json(value: &JsonValue) -> Result<ShiftingBitVector, ArtifactError> {
    let capacity = usize_field(value, "capacity")?;
    if capacity == 0 {
        return Err(ArtifactError::new("bit vector capacity is zero"));
    }
    let first_id = u64_field(value, "first_id")?;
    let mut bits = vec![false; capacity];
    for id in ids_from_json::<u64>(arr_field(value, "ids")?)? {
        let slot = id
            .checked_sub(first_id)
            .and_then(|i| usize::try_from(i).ok())
            .and_then(|i| bits.get_mut(i));
        match slot {
            Some(b) => *b = true,
            None => {
                return Err(ArtifactError::new(format!(
                    "bit id {id} outside window [{first_id}, {first_id}+{capacity})"
                )));
            }
        }
    }
    Ok(ShiftingBitVector::from_bits(capacity, first_id, &bits))
}

/// Encodes a subscription profile as `{capacity, vectors}`.
pub fn profile_to_json(p: &SubscriptionProfile) -> JsonValue {
    JsonValue::obj()
        .field("capacity", JsonValue::U64(p.capacity() as u64))
        .field(
            "vectors",
            JsonValue::Arr(
                p.iter()
                    .map(|(adv, v)| {
                        JsonValue::obj()
                            .field("adv", JsonValue::U64(adv.raw()))
                            .field("vector", bitvec_to_json(v))
                    })
                    .collect(),
            ),
        )
}

/// Decodes a subscription profile.
///
/// # Errors
/// Fails when a vector entry is malformed.
pub fn profile_from_json(value: &JsonValue) -> Result<SubscriptionProfile, ArtifactError> {
    let mut p = SubscriptionProfile::with_capacity(usize_field(value, "capacity")?);
    for entry in arr_field(value, "vectors")? {
        let adv = AdvId::new(u64_field(entry, "adv")?);
        p.insert_vector(adv, bitvec_from_json(field(entry, "vector")?)?);
    }
    Ok(p)
}

fn filter_to_json(f: &Filter) -> JsonValue {
    JsonValue::string(&f.to_string())
}

fn filter_from_json(value: &JsonValue) -> Result<Filter, ArtifactError> {
    let src = value
        .as_str()
        .ok_or_else(|| ArtifactError::new("filter is not a string"))?;
    if src.is_empty() {
        return Ok(Filter::new());
    }
    parse_filter(src).map_err(|e| ArtifactError::new(format!("bad filter `{src}`: {e}")))
}

fn publisher_to_json(p: &PublisherProfile) -> JsonValue {
    JsonValue::obj()
        .field("adv", JsonValue::U64(p.adv_id.raw()))
        .field("rate", JsonValue::from_f64(p.rate))
        .field("bandwidth", JsonValue::from_f64(p.bandwidth))
        .field("last_msg_id", JsonValue::U64(p.last_msg_id.raw()))
}

fn publisher_from_json(value: &JsonValue) -> Result<PublisherProfile, ArtifactError> {
    Ok(PublisherProfile::new(
        AdvId::new(u64_field(value, "adv")?),
        f64_field(value, "rate")?,
        f64_field(value, "bandwidth")?,
        MsgId::new(u64_field(value, "last_msg_id")?),
    ))
}

// ---------------------------------------------------------------------
// Model codecs
// ---------------------------------------------------------------------

/// Encodes a linear cost function as `{base, per_sub}`.
pub fn linear_fn_to_json(l: &LinearFn) -> JsonValue {
    JsonValue::obj()
        .field("base", JsonValue::from_f64(l.base))
        .field("per_sub", JsonValue::from_f64(l.per_sub))
}

/// Decodes a linear cost function.
///
/// # Errors
/// Fails on missing or malformed coefficients.
pub fn linear_fn_from_json(value: &JsonValue) -> Result<LinearFn, ArtifactError> {
    Ok(LinearFn::new(
        f64_field(value, "base")?,
        f64_field(value, "per_sub")?,
    ))
}

fn broker_spec_to_json(b: &BrokerSpec) -> JsonValue {
    JsonValue::obj()
        .field("id", JsonValue::U64(b.id.raw()))
        .field("url", JsonValue::string(&b.url))
        .field("matching_delay", linear_fn_to_json(&b.matching_delay))
        .field("out_bandwidth", JsonValue::from_f64(b.out_bandwidth))
}

fn broker_spec_from_json(value: &JsonValue) -> Result<BrokerSpec, ArtifactError> {
    Ok(BrokerSpec::new(
        BrokerId::new(u64_field(value, "id")?),
        str_field(value, "url")?.to_string(),
        linear_fn_from_json(field(value, "matching_delay")?)?,
        f64_field(value, "out_bandwidth")?,
    ))
}

fn subscription_to_json(s: &SubscriptionEntry) -> JsonValue {
    JsonValue::obj()
        .field("id", JsonValue::U64(s.id.raw()))
        .field("filter", filter_to_json(&s.filter))
        .field("profile", profile_to_json(&s.profile))
}

fn subscription_from_json(value: &JsonValue) -> Result<SubscriptionEntry, ArtifactError> {
    Ok(SubscriptionEntry::new(
        SubId::new(u64_field(value, "id")?),
        filter_from_json(field(value, "filter")?)?,
        profile_from_json(field(value, "profile")?)?,
    ))
}

/// Encodes a subscription unit.
pub fn unit_to_json(u: &Unit) -> JsonValue {
    JsonValue::obj()
        .field("subs", ids_to_json(u.subs.iter().copied()))
        .field("profile", profile_to_json(&u.profile))
        .field("out_bandwidth", JsonValue::from_f64(u.out_bandwidth))
}

/// Decodes a subscription unit.
///
/// # Errors
/// Fails on malformed members.
pub fn unit_from_json(value: &JsonValue) -> Result<Unit, ArtifactError> {
    Ok(Unit {
        subs: ids_from_json(arr_field(value, "subs")?)?,
        profile: profile_from_json(field(value, "profile")?)?,
        out_bandwidth: f64_field(value, "out_bandwidth")?,
    })
}

fn broker_load_to_json(l: &BrokerLoad) -> JsonValue {
    JsonValue::obj()
        .field("broker", JsonValue::U64(l.broker.raw()))
        .field(
            "units",
            JsonValue::Arr(l.units.iter().map(unit_to_json).collect()),
        )
        .field("union_profile", profile_to_json(&l.union_profile))
        .field("out_bw_used", JsonValue::from_f64(l.out_bw_used))
        .field("in_rate", JsonValue::from_f64(l.in_rate))
        .field("in_bandwidth", JsonValue::from_f64(l.in_bandwidth))
}

fn broker_load_from_json(value: &JsonValue) -> Result<BrokerLoad, ArtifactError> {
    Ok(BrokerLoad {
        broker: BrokerId::new(u64_field(value, "broker")?),
        units: arr_field(value, "units")?
            .iter()
            .map(unit_from_json)
            .collect::<Result<_, _>>()?,
        union_profile: profile_from_json(field(value, "union_profile")?)?,
        out_bw_used: f64_field(value, "out_bw_used")?,
        in_rate: f64_field(value, "in_rate")?,
        in_bandwidth: f64_field(value, "in_bandwidth")?,
    })
}

/// Encodes a Phase-2 allocation.
pub fn allocation_to_json(a: &Allocation) -> JsonValue {
    JsonValue::obj().field(
        "loads",
        JsonValue::Arr(a.loads.iter().map(broker_load_to_json).collect()),
    )
}

/// Decodes a Phase-2 allocation.
///
/// # Errors
/// Fails on malformed loads.
pub fn allocation_from_json(value: &JsonValue) -> Result<Allocation, ArtifactError> {
    Ok(Allocation {
        loads: arr_field(value, "loads")?
            .iter()
            .map(broker_load_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Encodes CRAM statistics.
pub fn cram_stats_to_json(s: &CramStats) -> JsonValue {
    JsonValue::obj()
        .field("subscriptions", JsonValue::U64(s.subscriptions as u64))
        .field("initial_gifs", JsonValue::U64(s.initial_gifs as u64))
        .field("iterations", JsonValue::U64(s.iterations as u64))
        .field("merges", JsonValue::U64(s.merges as u64))
        .field("failed_merges", JsonValue::U64(s.failed_merges as u64))
        .field(
            "one_to_many_merges",
            JsonValue::U64(s.one_to_many_merges as u64),
        )
        .field(
            "closeness_computations",
            JsonValue::U64(s.closeness_computations),
        )
        .field("poset_relation_ops", JsonValue::U64(s.poset_relation_ops))
        .field("final_units", JsonValue::U64(s.final_units as u64))
}

/// Decodes CRAM statistics.
///
/// # Errors
/// Fails on missing counters.
pub fn cram_stats_from_json(value: &JsonValue) -> Result<CramStats, ArtifactError> {
    Ok(CramStats {
        subscriptions: usize_field(value, "subscriptions")?,
        initial_gifs: usize_field(value, "initial_gifs")?,
        iterations: usize_field(value, "iterations")?,
        merges: usize_field(value, "merges")?,
        failed_merges: usize_field(value, "failed_merges")?,
        one_to_many_merges: usize_field(value, "one_to_many_merges")?,
        closeness_computations: u64_field(value, "closeness_computations")?,
        poset_relation_ops: u64_field(value, "poset_relation_ops")?,
        final_units: usize_field(value, "final_units")?,
    })
}

impl Artifact for AllocationInput {
    const KIND: &'static str = "allocation-input";

    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field(
                "brokers",
                JsonValue::Arr(self.brokers.iter().map(broker_spec_to_json).collect()),
            )
            .field(
                "subscriptions",
                JsonValue::Arr(
                    self.subscriptions
                        .iter()
                        .map(subscription_to_json)
                        .collect(),
                ),
            )
            .field(
                "publishers",
                JsonValue::Arr(self.publishers.iter().map(publisher_to_json).collect()),
            )
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        Ok(AllocationInput {
            brokers: arr_field(value, "brokers")?
                .iter()
                .map(broker_spec_from_json)
                .collect::<Result<_, _>>()?,
            subscriptions: arr_field(value, "subscriptions")?
                .iter()
                .map(subscription_from_json)
                .collect::<Result<_, _>>()?,
            publishers: arr_field(value, "publishers")?
                .iter()
                .map(publisher_from_json)
                .collect::<Result<PublisherTable, _>>()?,
        })
    }
}

// ---------------------------------------------------------------------
// Overlay codecs
// ---------------------------------------------------------------------

/// Encodes overlay-construction statistics.
pub fn overlay_stats_to_json(s: &OverlayStats) -> JsonValue {
    JsonValue::obj()
        .field("layers", JsonValue::U64(s.layers as u64))
        .field(
            "pure_forwarders_removed",
            JsonValue::U64(s.pure_forwarders_removed as u64),
        )
        .field("takeovers", JsonValue::U64(s.takeovers as u64))
        .field("best_fit_swaps", JsonValue::U64(s.best_fit_swaps as u64))
        .field("forced_root", JsonValue::Bool(s.forced_root))
}

/// Decodes overlay-construction statistics.
///
/// # Errors
/// Fails on missing counters.
pub fn overlay_stats_from_json(value: &JsonValue) -> Result<OverlayStats, ArtifactError> {
    Ok(OverlayStats {
        layers: usize_field(value, "layers")?,
        pure_forwarders_removed: usize_field(value, "pure_forwarders_removed")?,
        takeovers: usize_field(value, "takeovers")?,
        best_fit_swaps: usize_field(value, "best_fit_swaps")?,
        forced_root: bool_field(value, "forced_root")?,
    })
}

fn overlay_node_to_json(n: &OverlayNode) -> JsonValue {
    JsonValue::obj()
        .field("broker", JsonValue::U64(n.broker.raw()))
        .field("children", ids_to_json(n.children.iter().copied()))
        .field(
            "units",
            JsonValue::Arr(n.units.iter().map(unit_to_json).collect()),
        )
        .field("profile", profile_to_json(&n.profile))
        .field("in_bandwidth", JsonValue::from_f64(n.in_bandwidth))
        .field("in_rate", JsonValue::from_f64(n.in_rate))
        .field("out_bw_used", JsonValue::from_f64(n.out_bw_used))
        .field("route_entries", JsonValue::U64(n.route_entries as u64))
}

fn overlay_node_from_json(value: &JsonValue) -> Result<OverlayNode, ArtifactError> {
    Ok(OverlayNode {
        broker: BrokerId::new(u64_field(value, "broker")?),
        children: ids_from_json(arr_field(value, "children")?)?,
        units: arr_field(value, "units")?
            .iter()
            .map(unit_from_json)
            .collect::<Result<_, _>>()?,
        profile: profile_from_json(field(value, "profile")?)?,
        in_bandwidth: f64_field(value, "in_bandwidth")?,
        in_rate: f64_field(value, "in_rate")?,
        out_bw_used: f64_field(value, "out_bw_used")?,
        route_entries: usize_field(value, "route_entries")?,
    })
}

/// Encodes a constructed overlay tree.
pub fn overlay_to_json(o: &Overlay) -> JsonValue {
    JsonValue::obj()
        .field("root", JsonValue::U64(o.root().raw()))
        .field("stats", overlay_stats_to_json(&o.stats))
        .field(
            "nodes",
            JsonValue::Arr(o.nodes().map(overlay_node_to_json).collect()),
        )
}

/// Decodes a constructed overlay tree, revalidating the tree invariant.
///
/// # Errors
/// Fails on malformed nodes or a node set that is not a tree.
pub fn overlay_from_json(value: &JsonValue) -> Result<Overlay, ArtifactError> {
    let root = BrokerId::new(u64_field(value, "root")?);
    let stats = overlay_stats_from_json(field(value, "stats")?)?;
    let mut nodes = std::collections::BTreeMap::new();
    for entry in arr_field(value, "nodes")? {
        let node = overlay_node_from_json(entry)?;
        nodes.insert(node.broker, node);
    }
    Overlay::from_parts(nodes, root, stats).map_err(|e| ArtifactError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::{Op, Predicate, Value};

    fn profile(adv: u64, ids: &[u64]) -> SubscriptionProfile {
        let mut v = ShiftingBitVector::starting_at(64, 10);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(64);
        p.insert_vector(AdvId::new(adv), v);
        p
    }

    #[test]
    fn profile_round_trips() {
        let p = profile(3, &[10, 12, 40]);
        let back = profile_from_json(&profile_to_json(&p)).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.capacity(), 64);
        let v = back.vector(AdvId::new(3)).unwrap();
        assert_eq!(v.first_id(), 10);
        assert_eq!(v.iter_ids().collect::<Vec<_>>(), vec![10, 12, 40]);
    }

    #[test]
    fn filters_round_trip_including_empty() {
        let empty = Filter::new();
        assert_eq!(
            filter_from_json(&filter_to_json(&empty)).unwrap(),
            empty,
            "empty filter survives"
        );
        let f = Filter::from_predicates(vec![
            Predicate {
                attr: "class".into(),
                op: Op::Eq,
                value: Value::Str("STOCK".into()),
            },
            Predicate {
                attr: "volume".into(),
                op: Op::Gt,
                value: Value::Int(100),
            },
        ]);
        assert_eq!(filter_from_json(&filter_to_json(&f)).unwrap(), f);
    }

    #[test]
    fn allocation_input_round_trips() {
        let input = AllocationInput {
            brokers: vec![BrokerSpec::new(
                BrokerId::new(4),
                "sim://4",
                LinearFn::new(0.0001, 1e-7),
                48_000.5,
            )],
            subscriptions: vec![SubscriptionEntry::new(
                SubId::new(9),
                Filter::new(),
                profile(1, &[11, 13]),
            )],
            publishers: [PublisherProfile::new(
                AdvId::new(1),
                49.75,
                50_000.25,
                MsgId::new(321),
            )]
            .into_iter()
            .collect(),
        };
        let json = input.to_json();
        let back = AllocationInput::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json, "re-encode is byte-identical");
        assert_eq!(back.brokers, input.brokers);
        assert_eq!(back.subscriptions, input.subscriptions);
        assert_eq!(
            back.publishers.get(AdvId::new(1)),
            input.publishers.get(AdvId::new(1))
        );
        assert_eq!(AllocationInput::KIND, "allocation-input");
    }

    #[test]
    fn cram_and_overlay_stats_round_trip() {
        let s = CramStats {
            subscriptions: 10,
            initial_gifs: 8,
            iterations: 5,
            merges: 4,
            failed_merges: 1,
            one_to_many_merges: 2,
            closeness_computations: 123,
            poset_relation_ops: 456,
            final_units: 3,
        };
        assert_eq!(cram_stats_from_json(&cram_stats_to_json(&s)).unwrap(), s);
        let o = OverlayStats {
            layers: 3,
            pure_forwarders_removed: 2,
            takeovers: 1,
            best_fit_swaps: 4,
            forced_root: true,
        };
        assert_eq!(
            overlay_stats_from_json(&overlay_stats_to_json(&o)).unwrap(),
            o
        );
    }

    #[test]
    fn bad_bitvec_ids_fail() {
        let v = super::super::json::parse(r#"{"capacity":8,"first_id":10,"ids":[5]}"#).unwrap();
        assert!(bitvec_from_json(&v).is_err(), "id below the window");
        let v = super::super::json::parse(r#"{"capacity":8,"first_id":10,"ids":[18]}"#).unwrap();
        assert!(bitvec_from_json(&v).is_err(), "id past the window");
    }

    #[test]
    fn missing_fields_are_described() {
        let e = u64_field(&JsonValue::obj(), "nope").unwrap_err();
        assert!(e.to_string().contains("nope"));
    }
}
