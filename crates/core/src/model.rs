//! The allocation data model shared by every Phase-2/Phase-3 algorithm.
//!
//! CROC's algorithms operate on three inputs gathered in Phase 1:
//!
//! * the **broker pool** — every broker that answered the BIR with its
//!   linear matching-delay function and total output bandwidth;
//! * the **subscription pool** — every subscription with its bit-vector
//!   profile;
//! * the **publisher table** — rates, bandwidths and message-id
//!   counters of every publisher.
//!
//! The clustering unit of all algorithms is a [`Unit`]: one or more
//! co-located subscriptions with an OR-aggregated profile. A unit's
//! *output* bandwidth is the **sum** of its members' bandwidths (every
//! subscriber receives its own copy) while its *input* requirement is
//! the union profile's estimated rate (a publication is forwarded to the
//! hosting broker once).

use greenps_profile::{Load, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{BrokerId, SubId};
use greenps_pubsub::Filter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Linear matching-delay model `d(n) = base + per_sub * n` seconds for a
/// broker holding `n` subscriptions (paper §III-A: "a linear function
/// that models the matching delay as a function of the number of
/// subscriptions").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFn {
    /// Fixed per-message overhead in seconds.
    pub base: f64,
    /// Additional seconds per stored subscription.
    pub per_sub: f64,
}

impl LinearFn {
    /// Creates a delay model.
    pub fn new(base: f64, per_sub: f64) -> Self {
        Self { base, per_sub }
    }

    /// Matching delay in seconds with `n` subscriptions stored.
    pub fn delay(&self, n: usize) -> f64 {
        self.base + self.per_sub * n as f64
    }

    /// Maximum sustainable matching rate (msg/s) with `n` subscriptions
    /// — the inverse of the matching delay (paper §IV-A). Infinite when
    /// the delay is zero.
    pub fn max_rate(&self, n: usize) -> f64 {
        let d = self.delay(n);
        if d <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / d
        }
    }
}

/// A broker as reported in its BIA message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSpec {
    /// Broker identity.
    pub id: BrokerId,
    /// Connection URL (opaque to the algorithms; used to re-home
    /// clients after reconfiguration).
    pub url: String,
    /// Linear matching-delay model.
    pub matching_delay: LinearFn,
    /// Total output bandwidth in bytes per second.
    pub out_bandwidth: f64,
}

impl BrokerSpec {
    /// Creates a broker spec.
    pub fn new(
        id: BrokerId,
        url: impl Into<String>,
        matching_delay: LinearFn,
        out_bandwidth: f64,
    ) -> Self {
        Self {
            id,
            url: url.into(),
            matching_delay,
            out_bandwidth,
        }
    }
}

/// A subscription as reported in a BIA message: identity, filter and
/// bit-vector profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionEntry {
    /// Subscription identity.
    pub id: SubId,
    /// The content filter (never consulted by the algorithms — carried
    /// so the reconfiguration plan can re-issue subscriptions).
    pub filter: Filter,
    /// Bit-vector profile recorded by the CBC.
    pub profile: SubscriptionProfile,
}

impl SubscriptionEntry {
    /// Creates a subscription entry.
    pub fn new(id: SubId, filter: Filter, profile: SubscriptionProfile) -> Self {
        Self {
            id,
            filter,
            profile,
        }
    }
}

/// Everything Phase 2 needs: broker pool, subscription pool, publisher
/// table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllocationInput {
    /// The broker pool.
    pub brokers: Vec<BrokerSpec>,
    /// The subscription pool.
    pub subscriptions: Vec<SubscriptionEntry>,
    /// Publisher profiles keyed by advertisement.
    pub publishers: PublisherTable,
}

impl AllocationInput {
    /// Creates an empty input.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A clustering unit: one or more co-located subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    /// Member subscriptions.
    pub subs: Vec<SubId>,
    /// OR-aggregate of the members' profiles.
    pub profile: SubscriptionProfile,
    /// Sum of the members' individual output bandwidth requirements
    /// (bytes/s) — each member receives its own copy of every matching
    /// publication.
    pub out_bandwidth: f64,
}

impl Unit {
    /// Creates a singleton unit from one subscription, estimating its
    /// bandwidth requirement from the publishers' profiles.
    pub fn from_subscription(entry: &SubscriptionEntry, publishers: &PublisherTable) -> Self {
        let load = entry.profile.estimate_load(publishers);
        Self {
            subs: vec![entry.id],
            profile: entry.profile.clone(),
            out_bandwidth: load.bandwidth,
        }
    }

    /// Merges two units into a new co-located cluster (Figure 1):
    /// profiles are OR'ed, bandwidths added.
    #[must_use]
    pub fn merge(&self, other: &Unit) -> Unit {
        let mut subs = self.subs.clone();
        subs.extend_from_slice(&other.subs);
        Unit {
            subs,
            profile: self.profile.or(&other.profile),
            out_bandwidth: self.out_bandwidth + other.out_bandwidth,
        }
    }

    /// Number of member subscriptions.
    pub fn sub_count(&self) -> usize {
        self.subs.len()
    }

    /// The input load the unit induces on its hosting broker (union
    /// rate/bandwidth across members).
    pub fn input_load(&self, publishers: &PublisherTable) -> Load {
        self.profile.estimate_load(publishers)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unit[{} subs, {:.0} B/s out, {} bits]",
            self.subs.len(),
            self.out_bandwidth,
            self.profile.count_ones()
        )
    }
}

/// The load placed on one allocated broker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerLoad {
    /// Which broker.
    pub broker: BrokerId,
    /// The units allocated to it.
    pub units: Vec<Unit>,
    /// OR-aggregate of all unit profiles — this broker's interest, used
    /// as its "virtual subscription" in Phase 3.
    pub union_profile: SubscriptionProfile,
    /// Output bandwidth consumed (bytes/s).
    pub out_bw_used: f64,
    /// Estimated incoming publication rate (msg/s).
    pub in_rate: f64,
    /// Estimated incoming bandwidth (bytes/s) — what a parent broker
    /// must spend to feed this broker.
    pub in_bandwidth: f64,
}

impl BrokerLoad {
    /// Total member subscriptions hosted.
    pub fn sub_count(&self) -> usize {
        self.units.iter().map(Unit::sub_count).sum()
    }

    /// All member subscription ids.
    pub fn sub_ids(&self) -> impl Iterator<Item = SubId> + '_ {
        self.units.iter().flat_map(|u| u.subs.iter().copied())
    }
}

/// The outcome of Phase 2: a set of non-connected brokers, some with
/// subscriptions allocated to them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Brokers that received at least one unit.
    pub loads: Vec<BrokerLoad>,
}

impl Allocation {
    /// Number of allocated brokers.
    pub fn broker_count(&self) -> usize {
        self.loads.len()
    }

    /// Total subscriptions across all brokers.
    pub fn sub_count(&self) -> usize {
        self.loads.iter().map(BrokerLoad::sub_count).sum()
    }

    /// Looks up the load of a specific broker.
    pub fn load_of(&self, broker: BrokerId) -> Option<&BrokerLoad> {
        self.loads.iter().find(|l| l.broker == broker)
    }

    /// Ids of the allocated brokers.
    pub fn broker_ids(&self) -> impl Iterator<Item = BrokerId> + '_ {
        self.loads.iter().map(|l| l.broker)
    }
}

/// Errors produced by the allocation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// No broker can host this unit (insufficient pool resources).
    Infeasible {
        /// Ids of the subscriptions in the unplaceable unit.
        subs: Vec<SubId>,
    },
    /// The broker pool is empty but subscriptions exist.
    NoBrokers,
    /// The run observed a tripped [`CancelToken`] and stopped early.
    /// No partial allocation escapes through this variant; resumable
    /// entry points (e.g. `zoned_allocate_resumable`) return a typed
    /// checkpoint instead of this error.
    ///
    /// [`CancelToken`]: crate::pipeline::CancelToken
    Cancelled,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Infeasible { subs } => {
                write!(
                    f,
                    "no broker can host a unit of {} subscription(s)",
                    subs.len()
                )
            }
            AllocError::NoBrokers => f.write_str("broker pool is empty"),
            AllocError::Cancelled => f.write_str("allocation cancelled"),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_profile::{PublisherProfile, ShiftingBitVector};
    use greenps_pubsub::ids::{AdvId, MsgId};

    fn profile_with(ids: &[u64]) -> SubscriptionProfile {
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(100);
        p.insert_vector(AdvId::new(1), v);
        p
    }

    fn publishers() -> PublisherTable {
        [PublisherProfile::new(
            AdvId::new(1),
            100.0,
            100_000.0,
            MsgId::new(99),
        )]
        .into_iter()
        .collect()
    }

    #[test]
    fn linear_fn_delay_and_rate() {
        let f = LinearFn::new(0.001, 0.000001);
        assert!((f.delay(1000) - 0.002).abs() < 1e-12);
        assert!((f.max_rate(1000) - 500.0).abs() < 1e-9);
        assert_eq!(LinearFn::new(0.0, 0.0).max_rate(10), f64::INFINITY);
    }

    #[test]
    fn unit_from_subscription_estimates_bandwidth() {
        let entry = SubscriptionEntry::new(
            SubId::new(1),
            Filter::new(),
            profile_with(&(0..10).collect::<Vec<_>>()),
        );
        let u = Unit::from_subscription(&entry, &publishers());
        // 10 of 100 slots → 10% of 100 kB/s = 10 kB/s
        assert!((u.out_bandwidth - 10_000.0).abs() < 1e-6);
        assert_eq!(u.sub_count(), 1);
        assert!((u.input_load(&publishers()).rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_bandwidth_but_unions_input() {
        let p = publishers();
        let a = Unit::from_subscription(
            &SubscriptionEntry::new(SubId::new(1), Filter::new(), profile_with(&[0, 1, 2])),
            &p,
        );
        let b = Unit::from_subscription(
            &SubscriptionEntry::new(SubId::new(2), Filter::new(), profile_with(&[2, 3])),
            &p,
        );
        let m = a.merge(&b);
        assert_eq!(m.sub_count(), 2);
        // output = sum of members: 3% + 2% of 100kB/s
        assert!((m.out_bandwidth - 5_000.0).abs() < 1e-6);
        // input = union {0,1,2,3} = 4% of 100 msg/s
        assert!((m.input_load(&p).rate - 4.0).abs() < 1e-9);
        assert_eq!(m.to_string(), "unit[2 subs, 5000 B/s out, 4 bits]");
    }

    #[test]
    fn allocation_accessors() {
        let load = BrokerLoad {
            broker: BrokerId::new(7),
            units: vec![Unit {
                subs: vec![SubId::new(1), SubId::new(2)],
                profile: profile_with(&[0]),
                out_bandwidth: 1.0,
            }],
            union_profile: profile_with(&[0]),
            out_bw_used: 1.0,
            in_rate: 1.0,
            in_bandwidth: 1000.0,
        };
        assert_eq!(load.sub_count(), 2);
        assert_eq!(load.sub_ids().count(), 2);
        let alloc = Allocation { loads: vec![load] };
        assert_eq!(alloc.broker_count(), 1);
        assert_eq!(alloc.sub_count(), 2);
        assert!(alloc.load_of(BrokerId::new(7)).is_some());
        assert!(alloc.load_of(BrokerId::new(8)).is_none());
        assert_eq!(
            alloc.broker_ids().collect::<Vec<_>>(),
            vec![BrokerId::new(7)]
        );
    }

    #[test]
    fn errors_display() {
        let e = AllocError::Infeasible {
            subs: vec![SubId::new(1)],
        };
        assert_eq!(
            e.to_string(),
            "no broker can host a unit of 1 subscription(s)"
        );
        assert_eq!(AllocError::NoBrokers.to_string(), "broker pool is empty");
    }
}
