//! Identifier newtypes used across the system.
//!
//! Every entity in the network — brokers, clients, advertisements,
//! subscriptions and individual publications — carries a small `Copy`
//! identifier. Newtypes keep them statically distinct (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from a raw integer.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a broker in the overlay.
    BrokerId,
    "B"
);
id_type!(
    /// Identifies a publish/subscribe client (publisher or subscriber).
    ClientId,
    "C"
);
id_type!(
    /// Globally unique advertisement identifier.
    ///
    /// The paper uses the advertisement id embedded in every publication
    /// to identify its publisher, so `AdvId` doubles as the publisher key
    /// in subscription profiles.
    AdvId,
    "Adv"
);
id_type!(
    /// Identifies a subscription.
    SubId,
    "S"
);

/// Per-publisher publication sequence number.
///
/// Each publisher appends a monotonically increasing message id to its
/// publications; bit-vector profiles are indexed by this id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MsgId(pub u64);

impl MsgId {
    /// Creates a message id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The message id following this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for MsgId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(BrokerId::new(3).to_string(), "B3");
        assert_eq!(ClientId::new(1).to_string(), "C1");
        assert_eq!(AdvId::new(7).to_string(), "Adv7");
        assert_eq!(SubId::new(9).to_string(), "S9");
        assert_eq!(MsgId::new(75).to_string(), "#75");
    }

    #[test]
    fn conversions_round_trip() {
        let b: BrokerId = 42u64.into();
        assert_eq!(u64::from(b), 42);
        assert_eq!(b.raw(), 42);
    }

    #[test]
    fn msg_id_next_increments() {
        assert_eq!(MsgId::new(5).next(), MsgId::new(6));
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(SubId::new(1) < SubId::new(2));
        assert!(MsgId::new(10) > MsgId::new(9));
    }
}
