//! Predicates — the atoms of the content-based subscription language.
//!
//! A predicate constrains a single attribute, e.g. `[volume,>,1000]` or
//! `[symbol,=,'YHOO']`. Subscriptions and advertisements are
//! conjunctions of predicates (see [`crate::filter`]).
//!
//! Besides evaluation against publication values, predicates support the
//! *covering* and *overlap* relations that advertisement-based routing
//! needs: `p.covers(q)` means every value satisfying `q` also satisfies
//! `p`, and `p.overlaps(q)` means some value satisfies both.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Equal, `=`.
    Eq,
    /// Not equal, `!=` (string and numeric domains).
    Neq,
    /// Less than, `<` (numeric).
    Lt,
    /// Less than or equal, `<=` (numeric).
    Le,
    /// Greater than, `>` (numeric).
    Gt,
    /// Greater than or equal, `>=` (numeric).
    Ge,
    /// String prefix match, `str-prefix`.
    Prefix,
    /// String suffix match, `str-suffix`.
    Suffix,
    /// String containment, `str-contains`.
    Contains,
    /// Attribute presence, `isPresent` — the value operand is ignored.
    /// Advertisements use this to declare an attribute without bounding it.
    Present,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Neq => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Prefix => "str-prefix",
            Op::Suffix => "str-suffix",
            Op::Contains => "str-contains",
            Op::Present => "isPresent",
        };
        f.write_str(s)
    }
}

/// A single attribute constraint, e.g. `[volume,>,1000]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name, e.g. `volume`.
    pub attr: String,
    /// Comparison operator.
    pub op: Op,
    /// Operand the attribute is compared against.
    pub value: Value,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: impl Into<String>, op: Op, value: impl Into<Value>) -> Self {
        Self {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(attr, Op::Eq, value)
    }

    /// Shorthand for a presence predicate (used by advertisements).
    pub fn present(attr: impl Into<String>) -> Self {
        Self::new(attr, Op::Present, Value::Bool(true))
    }

    /// Evaluates the predicate against a published value for the same
    /// attribute. Returns `false` on domain mismatch (a string predicate
    /// never matches a numeric value).
    pub fn eval(&self, published: &Value) -> bool {
        match self.op {
            Op::Present => true,
            Op::Eq => published == &self.value,
            Op::Neq => published.same_domain(&self.value) && published != &self.value,
            Op::Lt | Op::Le | Op::Gt | Op::Ge => match published.partial_cmp_value(&self.value) {
                Some(ord) => match self.op {
                    Op::Lt => ord == Ordering::Less,
                    Op::Le => ord != Ordering::Greater,
                    Op::Gt => ord == Ordering::Greater,
                    _ => ord != Ordering::Less,
                },
                None => false,
            },
            Op::Prefix => match (published.as_str(), self.value.as_str()) {
                (Some(p), Some(v)) => p.starts_with(v),
                _ => false,
            },
            Op::Suffix => match (published.as_str(), self.value.as_str()) {
                (Some(p), Some(v)) => p.ends_with(v),
                _ => false,
            },
            Op::Contains => match (published.as_str(), self.value.as_str()) {
                (Some(p), Some(v)) => p.contains(v),
                _ => false,
            },
        }
    }

    /// True when every value satisfying `other` also satisfies `self`.
    ///
    /// The implementation is conservative: it returns `true` only when
    /// coverage is provable, which is sound for routing (a missed
    /// covering only costs an extra routing-table entry, never a missed
    /// delivery).
    pub fn covers(&self, other: &Predicate) -> bool {
        if self.attr != other.attr {
            return false;
        }
        if self.op == Op::Present {
            return true;
        }
        if self == other {
            return true;
        }
        use Op::*;
        match (self.op, other.op) {
            (Eq, Eq) => self.value == other.value,
            // x < a covers x < b when b <= a; x < a covers x <= b when b < a
            (Lt, Lt) | (Le, Le) | (Le, Lt) => le(&other.value, &self.value),
            (Lt, Le) => lt(&other.value, &self.value),
            (Gt, Gt) | (Ge, Ge) | (Ge, Gt) => ge(&other.value, &self.value),
            (Gt, Ge) => gt(&other.value, &self.value),
            (Lt, Eq) => lt(&other.value, &self.value),
            (Le, Eq) => le(&other.value, &self.value),
            (Gt, Eq) => gt(&other.value, &self.value),
            (Ge, Eq) => ge(&other.value, &self.value),
            (Neq, Neq) => self.value == other.value,
            (Neq, Eq) => self.value.same_domain(&other.value) && self.value != other.value,
            (Neq, Lt) | (Neq, Gt) => {
                // x != a covers x < b if a >= b; covers x > b if a <= b
                match self.op {
                    _ if other.op == Lt => ge(&self.value, &other.value),
                    _ => le(&self.value, &other.value),
                }
            }
            (Prefix, Prefix) | (Suffix, Suffix) | (Contains, Contains) => {
                match (self.value.as_str(), other.value.as_str()) {
                    (Some(a), Some(b)) => match self.op {
                        Prefix => b.starts_with(a),
                        Suffix => b.ends_with(a),
                        _ => b.contains(a),
                    },
                    _ => false,
                }
            }
            (Prefix, Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => b.starts_with(a),
                _ => false,
            },
            (Suffix, Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => b.ends_with(a),
                _ => false,
            },
            (Contains, Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => b.contains(a),
                _ => false,
            },
            (Contains, Prefix) | (Contains, Suffix) => {
                match (self.value.as_str(), other.value.as_str()) {
                    // "contains a" covers "prefix b" only if every string with
                    // prefix b contains a, i.e. a is a substring of b.
                    (Some(a), Some(b)) => b.contains(a),
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// True when some value can satisfy both predicates.
    ///
    /// Conservative in the other direction from [`Predicate::covers`]:
    /// it may report `true` for a disjoint pair (never `false` for an
    /// overlapping one), which is again the safe direction for routing.
    pub fn overlaps(&self, other: &Predicate) -> bool {
        if self.attr != other.attr {
            // Different attributes constrain different dimensions; a
            // publication can satisfy both.
            return true;
        }
        if self.op == Op::Present || other.op == Op::Present {
            return true;
        }
        if !self.value.same_domain(&other.value) {
            return false;
        }
        use Op::*;
        match (self.op, other.op) {
            (Eq, Eq) => self.value == other.value,
            (Eq, _) => other.eval(&self.value),
            (_, Eq) => self.eval(&other.value),
            (Lt | Le, Lt | Le) | (Gt | Ge, Gt | Ge) => true,
            (Lt, Gt) | (Le, Gt) => gt(&self.value, &other.value),
            (Lt, Ge) => gt(&self.value, &other.value),
            (Le, Ge) => ge(&self.value, &other.value),
            (Gt, Lt) | (Gt, Le) => lt(&self.value, &other.value),
            (Ge, Lt) => lt(&self.value, &other.value),
            (Ge, Le) => le(&self.value, &other.value),
            (Neq, _) | (_, Neq) => true,
            // String pattern operators: assume overlap unless provably
            // equality-incompatible (handled by the Eq arms above).
            _ => true,
        }
    }
}

fn lt(a: &Value, b: &Value) -> bool {
    a.partial_cmp_value(b) == Some(Ordering::Less)
}
fn le(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(Ordering::Less | Ordering::Equal)
    )
}
fn gt(a: &Value, b: &Value) -> bool {
    a.partial_cmp_value(b) == Some(Ordering::Greater)
}
fn ge(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(Ordering::Greater | Ordering::Equal)
    )
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{},{}]", self.attr, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(attr: &str, op: Op, v: impl Into<Value>) -> Predicate {
        Predicate::new(attr, op, v)
    }

    #[test]
    fn eval_equality_and_inequality() {
        let sym = Predicate::eq("symbol", "YHOO");
        assert!(sym.eval(&Value::str("YHOO")));
        assert!(!sym.eval(&Value::str("GOOG")));

        let vol = p("volume", Op::Gt, 1000i64);
        assert!(vol.eval(&Value::Int(6200)));
        assert!(!vol.eval(&Value::Int(1000)));
        assert!(vol.eval(&Value::Float(1000.5)));
    }

    #[test]
    fn eval_rejects_domain_mismatch() {
        let vol = p("volume", Op::Gt, 1000i64);
        assert!(!vol.eval(&Value::str("big")));
        let neq = p("symbol", Op::Neq, "YHOO");
        assert!(neq.eval(&Value::str("GOOG")));
        assert!(
            !neq.eval(&Value::Int(5)),
            "!= across domains is not a match"
        );
    }

    #[test]
    fn eval_string_operators() {
        assert!(p("s", Op::Prefix, "YH").eval(&Value::str("YHOO")));
        assert!(!p("s", Op::Prefix, "HO").eval(&Value::str("YHOO")));
        assert!(p("s", Op::Suffix, "OO").eval(&Value::str("YHOO")));
        assert!(p("s", Op::Contains, "HO").eval(&Value::str("YHOO")));
        assert!(p("s", Op::Present, true).eval(&Value::Int(1)));
    }

    #[test]
    fn covers_numeric_ranges() {
        // low < 20 covers low < 10
        assert!(p("low", Op::Lt, 20.0).covers(&p("low", Op::Lt, 10.0)));
        assert!(!p("low", Op::Lt, 10.0).covers(&p("low", Op::Lt, 20.0)));
        // low <= 10 covers low < 10
        assert!(p("low", Op::Le, 10.0).covers(&p("low", Op::Lt, 10.0)));
        // low < 10 does NOT cover low <= 10
        assert!(!p("low", Op::Lt, 10.0).covers(&p("low", Op::Le, 10.0)));
        // volume > 100 covers volume > 200 and volume = 500
        assert!(p("v", Op::Gt, 100i64).covers(&p("v", Op::Gt, 200i64)));
        assert!(p("v", Op::Gt, 100i64).covers(&p("v", Op::Eq, 500i64)));
        assert!(!p("v", Op::Gt, 100i64).covers(&p("v", Op::Eq, 50i64)));
    }

    #[test]
    fn covers_requires_same_attribute() {
        assert!(!p("high", Op::Lt, 20.0).covers(&p("low", Op::Lt, 10.0)));
    }

    #[test]
    fn present_covers_everything_on_attribute() {
        assert!(Predicate::present("v").covers(&p("v", Op::Gt, 10i64)));
        assert!(Predicate::present("v").covers(&Predicate::eq("v", "x")));
        assert!(!Predicate::present("w").covers(&p("v", Op::Gt, 10i64)));
    }

    #[test]
    fn covers_string_patterns() {
        assert!(p("s", Op::Prefix, "YH").covers(&p("s", Op::Prefix, "YHO")));
        assert!(!p("s", Op::Prefix, "YHO").covers(&p("s", Op::Prefix, "YH")));
        assert!(p("s", Op::Prefix, "YH").covers(&Predicate::eq("s", "YHOO")));
        assert!(p("s", Op::Contains, "HO").covers(&Predicate::eq("s", "YHOO")));
    }

    #[test]
    fn covers_neq() {
        assert!(p("s", Op::Neq, "A").covers(&Predicate::eq("s", "B")));
        assert!(!p("s", Op::Neq, "A").covers(&Predicate::eq("s", "A")));
        assert!(p("v", Op::Neq, 10i64).covers(&p("v", Op::Lt, 5i64)));
        assert!(!p("v", Op::Neq, 3i64).covers(&p("v", Op::Lt, 5i64)));
    }

    #[test]
    fn overlap_numeric() {
        // x < 10 and x > 5 overlap; x < 5 and x > 10 do not
        assert!(p("x", Op::Lt, 10i64).overlaps(&p("x", Op::Gt, 5i64)));
        assert!(!p("x", Op::Lt, 5i64).overlaps(&p("x", Op::Gt, 10i64)));
        // boundary: x <= 5 and x >= 5 overlap at 5
        assert!(p("x", Op::Le, 5i64).overlaps(&p("x", Op::Ge, 5i64)));
        // x < 5 and x >= 5 do not
        assert!(!p("x", Op::Lt, 5i64).overlaps(&p("x", Op::Ge, 5i64)));
    }

    #[test]
    fn overlap_equality() {
        assert!(Predicate::eq("s", "YHOO").overlaps(&Predicate::eq("s", "YHOO")));
        assert!(!Predicate::eq("s", "YHOO").overlaps(&Predicate::eq("s", "GOOG")));
        assert!(Predicate::eq("x", 7i64).overlaps(&p("x", Op::Lt, 10i64)));
        assert!(!Predicate::eq("x", 17i64).overlaps(&p("x", Op::Lt, 10i64)));
    }

    #[test]
    fn overlap_different_attributes_is_true() {
        assert!(Predicate::eq("a", 1i64).overlaps(&Predicate::eq("b", 2i64)));
    }

    #[test]
    fn covers_implies_overlaps_on_samples() {
        let cases = [
            (p("x", Op::Lt, 20i64), p("x", Op::Lt, 10i64)),
            (p("x", Op::Ge, 5i64), p("x", Op::Gt, 5i64)),
            (Predicate::present("x"), Predicate::eq("x", 3i64)),
            (p("s", Op::Prefix, "Y"), Predicate::eq("s", "YHOO")),
        ];
        for (a, b) in cases {
            assert!(a.covers(&b), "{a} should cover {b}");
            assert!(a.overlaps(&b), "{a} should overlap {b}");
        }
    }

    #[test]
    fn display_matches_padres_syntax() {
        assert_eq!(p("volume", Op::Gt, 1000i64).to_string(), "[volume,>,1000]");
        assert_eq!(
            Predicate::eq("symbol", "YHOO").to_string(),
            "[symbol,=,'YHOO']"
        );
    }
}
