//! Advertisement-based content routing tables (PADRES-style).
//!
//! Filter-based content-based pub/sub routes in three steps:
//!
//! 1. **Advertisements flood** the overlay; every broker records each
//!    advertisement together with the *last hop* it arrived from.
//! 2. **Subscriptions** are forwarded hop-by-hop *toward* the last hops
//!    of every advertisement they intersect, building the publication
//!    routing table (PRT) along the reverse path.
//! 3. **Publications** are matched against the PRT at each broker and
//!    forwarded to the recorded destinations of matching subscriptions.
//!
//! The tables are generic over the hop type `H` — brokers instantiate it
//! with an enum distinguishing neighbor brokers from local clients. `H`
//! must be `Ord`: tables iterate in hop/id order so routing decisions
//! are identical run to run (the determinism lint's contract).

use crate::filter::Filter;
use crate::ids::{AdvId, SubId};
use crate::matching::{BucketMatcher, Matcher};
use crate::message::{Advertisement, Publication, Subscription};
use std::collections::BTreeMap;

/// Routing state of one broker: the advertisement table (SRT) and the
/// publication routing table (PRT).
#[derive(Debug, Clone)]
pub struct RoutingTables<H> {
    advertisements: BTreeMap<AdvId, (Advertisement, H)>,
    subscriptions: BTreeMap<SubId, (Subscription, H)>,
    matcher: BucketMatcher,
}

impl<H: Clone + Ord> Default for RoutingTables<H> {
    fn default() -> Self {
        Self {
            advertisements: BTreeMap::new(),
            subscriptions: BTreeMap::new(),
            matcher: BucketMatcher::new(),
        }
    }
}

impl<H: Clone + Ord> RoutingTables<H> {
    /// Creates empty routing tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an advertisement arriving from `last_hop`.
    ///
    /// Returns `true` when the advertisement is new (and should be
    /// flooded onward); duplicates are ignored.
    pub fn insert_advertisement(&mut self, adv: Advertisement, last_hop: H) -> bool {
        match self.advertisements.contains_key(&adv.id) {
            true => false,
            false => {
                self.advertisements.insert(adv.id, (adv, last_hop));
                true
            }
        }
    }

    /// Removes an advertisement; returns `true` if it was present.
    pub fn remove_advertisement(&mut self, id: AdvId) -> bool {
        self.advertisements.remove(&id).is_some()
    }

    /// Records a subscription arriving from `last_hop` and returns the
    /// set of hops it must be forwarded to: the distinct last hops of
    /// every intersecting advertisement, excluding the hop it came from.
    pub fn insert_subscription(&mut self, sub: Subscription, last_hop: H) -> Vec<H> {
        // At most one forward per advertisement hop.
        let mut out: Vec<H> = Vec::with_capacity(self.advertisements.len());
        for (adv, adv_hop) in self.advertisements.values() {
            if *adv_hop != last_hop
                && sub.filter.intersects_advertisement(&adv.filter)
                && !out.contains(adv_hop)
            {
                out.push(adv_hop.clone());
            }
        }
        self.matcher.insert(sub.id, sub.filter.clone());
        self.subscriptions.insert(sub.id, (sub, last_hop));
        out
    }

    /// Removes a subscription; returns its last hop if it was present.
    pub fn remove_subscription(&mut self, id: SubId) -> Option<H> {
        self.matcher.remove(id);
        self.subscriptions.remove(&id).map(|(_, hop)| hop)
    }

    /// Computes where to forward a subscription that is *already*
    /// recorded, toward a newly arrived advertisement (used when an
    /// advertisement arrives after subscriptions).
    pub fn subscriptions_toward(&self, adv: &Advertisement, adv_hop: &H) -> Vec<SubId> {
        self.subscriptions
            .values()
            .filter(|(sub, sub_hop)| {
                sub_hop != adv_hop && sub.filter.intersects_advertisement(&adv.filter)
            })
            .map(|(sub, _)| sub.id)
            .collect()
    }

    /// Routes a publication: returns the distinct last hops of matching
    /// subscriptions, excluding the hop the publication arrived from.
    pub fn route_publication(&self, publication: &Publication, from: Option<&H>) -> Vec<H> {
        let matches = self.matcher.matches(publication);
        // At most one forward per matching subscription.
        let mut out: Vec<H> = Vec::with_capacity(matches.len());
        for sub_id in matches {
            if let Some((_, hop)) = self.subscriptions.get(&sub_id) {
                if Some(hop) != from && !out.contains(hop) {
                    out.push(hop.clone());
                }
            }
        }
        out
    }

    /// Like [`RoutingTables::route_publication`] but rebuilds the match
    /// index in place when stale — the broker hot path.
    pub fn route_publication_mut(&mut self, publication: &Publication, from: Option<&H>) -> Vec<H> {
        self.matcher.ensure_built();
        self.route_publication(publication, from)
    }

    /// The subscription ids matching a publication (for delivery
    /// accounting at edge brokers).
    pub fn matching_subscriptions(&self, publication: &Publication) -> Vec<SubId> {
        self.matcher.matches(publication)
    }

    /// Like [`RoutingTables::matching_subscriptions`] but rebuilds the
    /// match index in place when stale — the broker hot path.
    pub fn matching_subscriptions_mut(&mut self, publication: &Publication) -> Vec<SubId> {
        self.matcher.ensure_built();
        self.matcher.matches(publication)
    }

    /// Looks up a stored subscription.
    pub fn subscription(&self, id: SubId) -> Option<&Subscription> {
        self.subscriptions.get(&id).map(|(s, _)| s)
    }

    /// Last hop of a stored subscription.
    pub fn subscription_hop(&self, id: SubId) -> Option<&H> {
        self.subscriptions.get(&id).map(|(_, h)| h)
    }

    /// Iterates over stored advertisements with their last hops.
    pub fn advertisements(&self) -> impl Iterator<Item = (&Advertisement, &H)> {
        self.advertisements.values().map(|(a, h)| (a, h))
    }

    /// Iterates over stored subscriptions with their last hops.
    pub fn subscriptions(&self) -> impl Iterator<Item = (&Subscription, &H)> {
        self.subscriptions.values().map(|(s, h)| (s, h))
    }

    /// Number of stored subscriptions — the `n` fed into the broker's
    /// linear matching-delay function.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Number of stored advertisements.
    pub fn advertisement_count(&self) -> usize {
        self.advertisements.len()
    }
}

/// Covering-aware subscription forwarder.
///
/// PADRES brokers avoid forwarding a subscription to a neighbor when an
/// earlier subscription already forwarded in that direction covers it.
/// This forwarder tracks, per target hop, the filters already sent.
#[derive(Debug, Clone)]
pub struct CoveringForwarder<H> {
    sent: BTreeMap<H, Vec<(SubId, Filter)>>,
}

impl<H: Clone + Ord> Default for CoveringForwarder<H> {
    fn default() -> Self {
        Self {
            sent: BTreeMap::new(),
        }
    }
}

impl<H: Clone + Ord> CoveringForwarder<H> {
    /// Creates an empty forwarder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides whether `sub` still needs to be sent to `hop`; records it
    /// as sent when the answer is yes.
    pub fn should_forward(&mut self, sub: &Subscription, hop: &H) -> bool {
        let sent = self.sent.entry(hop.clone()).or_default();
        if sent.iter().any(|(_, f)| f.covers(&sub.filter)) {
            return false;
        }
        sent.push((sub.id, sub.filter.clone()));
        true
    }

    /// Forgets a subscription everywhere (on unsubscribe).
    ///
    /// Returns the hops the subscription had been forwarded to, which
    /// must now be re-evaluated for uncovered siblings.
    pub fn forget(&mut self, id: SubId) -> Vec<H> {
        let mut hops = Vec::new();
        for (hop, sent) in self.sent.iter_mut() {
            let before = sent.len();
            sent.retain(|(s, _)| *s != id);
            if sent.len() != before {
                hops.push(hop.clone());
            }
        }
        hops
    }

    /// Total number of remembered (hop, filter) pairs — diagnostics.
    pub fn sent_count(&self) -> usize {
        self.sent.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{stock_advertisement, stock_template};
    use crate::ids::{AdvId, MsgId};
    use crate::message::Publication;
    use crate::predicate::{Op, Predicate};

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Hop {
        Neighbor(u32),
        Client(u32),
    }

    fn quote(symbol: &str, low: f64) -> Publication {
        Publication::builder(AdvId::new(1), MsgId::new(1))
            .attr("class", "STOCK")
            .attr("symbol", symbol)
            .attr("low", low)
            .build()
    }

    #[test]
    fn advertisement_flooding_dedups() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        let adv = Advertisement::new(AdvId::new(1), stock_advertisement("YHOO"));
        assert!(rt.insert_advertisement(adv.clone(), Hop::Neighbor(1)));
        assert!(!rt.insert_advertisement(adv, Hop::Neighbor(2)));
        assert_eq!(rt.advertisement_count(), 1);
    }

    #[test]
    fn subscription_routes_toward_matching_advertisement() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_advertisement(
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            Hop::Neighbor(1),
        );
        rt.insert_advertisement(
            Advertisement::new(AdvId::new(2), stock_advertisement("GOOG")),
            Hop::Neighbor(2),
        );
        let fwd = rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Client(7),
        );
        assert_eq!(fwd, vec![Hop::Neighbor(1)]);
    }

    #[test]
    fn subscription_not_forwarded_back_to_its_origin() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_advertisement(
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            Hop::Neighbor(1),
        );
        let fwd = rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Neighbor(1),
        );
        assert!(fwd.is_empty());
    }

    #[test]
    fn publication_routed_to_matching_hops_once() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_advertisement(
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            Hop::Neighbor(1),
        );
        rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Neighbor(3),
        );
        rt.insert_subscription(
            Subscription::new(SubId::new(2), stock_template("YHOO")),
            Hop::Neighbor(3),
        );
        rt.insert_subscription(
            Subscription::new(SubId::new(3), stock_template("YHOO")),
            Hop::Client(9),
        );
        let hops = rt.route_publication(&quote("YHOO", 17.0), Some(&Hop::Neighbor(1)));
        assert_eq!(hops.len(), 2);
        assert!(hops.contains(&Hop::Neighbor(3)));
        assert!(hops.contains(&Hop::Client(9)));
        // Not routed back to where it came from.
        let hops = rt.route_publication(&quote("YHOO", 17.0), Some(&Hop::Neighbor(3)));
        assert_eq!(hops, vec![Hop::Client(9)]);
    }

    #[test]
    fn unsubscribe_stops_routing() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_advertisement(
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            Hop::Neighbor(1),
        );
        rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Client(9),
        );
        assert_eq!(rt.remove_subscription(SubId::new(1)), Some(Hop::Client(9)));
        assert!(rt.route_publication(&quote("YHOO", 17.0), None).is_empty());
        assert_eq!(rt.subscription_count(), 0);
    }

    #[test]
    fn late_advertisement_finds_existing_subscriptions() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Client(9),
        );
        let adv = Advertisement::new(AdvId::new(1), stock_advertisement("YHOO"));
        rt.insert_advertisement(adv.clone(), Hop::Neighbor(1));
        let subs = rt.subscriptions_toward(&adv, &Hop::Neighbor(1));
        assert_eq!(subs, vec![SubId::new(1)]);
        // A subscription that arrived FROM the advertisement's hop is skipped.
        let subs = rt.subscriptions_toward(&adv, &Hop::Client(9));
        assert!(subs.is_empty());
    }

    #[test]
    fn covering_forwarder_suppresses_covered_subscriptions() {
        let mut fwd: CoveringForwarder<Hop> = CoveringForwarder::new();
        let broad = Subscription::new(SubId::new(1), stock_template("YHOO"));
        let narrow = Subscription::new(
            SubId::new(2),
            stock_template("YHOO").and(Predicate::new("low", Op::Lt, 18.0)),
        );
        assert!(fwd.should_forward(&broad, &Hop::Neighbor(1)));
        assert!(!fwd.should_forward(&narrow, &Hop::Neighbor(1)));
        // Different hop is independent.
        assert!(fwd.should_forward(&narrow, &Hop::Neighbor(2)));
        assert_eq!(fwd.sent_count(), 2);
    }

    #[test]
    fn covering_forwarder_forget_reports_hops() {
        let mut fwd: CoveringForwarder<Hop> = CoveringForwarder::new();
        let broad = Subscription::new(SubId::new(1), stock_template("YHOO"));
        assert!(fwd.should_forward(&broad, &Hop::Neighbor(1)));
        assert!(fwd.should_forward(&broad, &Hop::Neighbor(2)));
        let hops = fwd.forget(SubId::new(1));
        // BTreeMap iteration makes the reported hop order deterministic.
        assert_eq!(hops, vec![Hop::Neighbor(1), Hop::Neighbor(2)]);
        assert_eq!(fwd.sent_count(), 0);
    }

    #[test]
    fn accessors() {
        let mut rt: RoutingTables<Hop> = RoutingTables::new();
        rt.insert_subscription(
            Subscription::new(SubId::new(1), stock_template("YHOO")),
            Hop::Client(9),
        );
        assert!(rt.subscription(SubId::new(1)).is_some());
        assert_eq!(rt.subscription_hop(SubId::new(1)), Some(&Hop::Client(9)));
        assert_eq!(rt.subscriptions().count(), 1);
        assert_eq!(rt.advertisements().count(), 0);
        let p = quote("YHOO", 17.0);
        assert_eq!(rt.matching_subscriptions(&p), vec![SubId::new(1)]);
    }
}
