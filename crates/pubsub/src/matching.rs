//! Matching engine: given a publication, find the matching subscriptions.
//!
//! Two implementations share the [`Matcher`] behaviour:
//!
//! * [`NaiveMatcher`] scans every filter — the reference oracle used in
//!   tests;
//! * [`CountingMatcher`] implements the classic predicate-counting
//!   algorithm with per-attribute predicate sharing, the engine brokers
//!   use. Identical predicates appearing in many subscriptions (e.g. the
//!   `[class,=,'STOCK']` predicate in every stock subscription) are
//!   evaluated once per publication.

use crate::filter::Filter;
use crate::ids::SubId;
use crate::message::Publication;
use std::collections::BTreeMap;

/// Common behaviour of matching engines.
pub trait Matcher {
    /// Registers a filter under a subscription id.
    ///
    /// Re-inserting an id replaces the previous filter.
    fn insert(&mut self, id: SubId, filter: Filter);

    /// Removes a subscription; returns `true` if it was present.
    fn remove(&mut self, id: SubId) -> bool;

    /// Returns the ids of all subscriptions matching the publication.
    fn matches(&self, publication: &Publication) -> Vec<SubId>;

    /// Number of registered subscriptions.
    fn len(&self) -> usize;

    /// True when no subscriptions are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reference matcher that scans all filters linearly.
#[derive(Debug, Clone, Default)]
pub struct NaiveMatcher {
    filters: BTreeMap<SubId, Filter>,
}

impl NaiveMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Matcher for NaiveMatcher {
    fn insert(&mut self, id: SubId, filter: Filter) {
        self.filters.insert(id, filter);
    }

    fn remove(&mut self, id: SubId) -> bool {
        self.filters.remove(&id).is_some()
    }

    fn matches(&self, publication: &Publication) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .filters
            .iter()
            .filter(|(_, f)| f.matches(publication))
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.filters.len()
    }
}

/// Identifier of a shared predicate inside [`CountingMatcher`].
type PredId = usize;

#[derive(Debug, Clone)]
struct SharedPredicate {
    predicate: crate::predicate::Predicate,
    /// Subscriptions containing this predicate, with multiplicity 1.
    subscribers: Vec<SubId>,
}

/// Predicate-counting matcher with per-attribute predicate sharing.
#[derive(Debug, Clone, Default)]
pub struct CountingMatcher {
    /// Shared predicate table.
    predicates: Vec<SharedPredicate>,
    /// Canonical predicate string -> predicate id.
    by_key: BTreeMap<String, PredId>,
    /// Attribute -> predicate ids constraining it.
    by_attr: BTreeMap<String, Vec<PredId>>,
    /// Subscription -> number of predicates it must satisfy.
    required: BTreeMap<SubId, usize>,
    /// Subscriptions with empty filters (match everything).
    match_all: Vec<SubId>,
    /// Kept for removal and introspection.
    filters: BTreeMap<SubId, Filter>,
}

impl CountingMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stored filter for a subscription, if present.
    pub fn filter(&self, id: SubId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    /// Number of distinct shared predicates (diagnostic).
    pub fn shared_predicate_count(&self) -> usize {
        self.predicates
            .iter()
            .filter(|p| !p.subscribers.is_empty())
            .count()
    }
}

impl Matcher for CountingMatcher {
    fn insert(&mut self, id: SubId, filter: Filter) {
        if self.filters.contains_key(&id) {
            self.remove(id);
        }
        if filter.is_empty() {
            self.match_all.push(id);
        } else {
            self.required.insert(id, filter.len());
            for pred in filter.predicates() {
                let key = pred.to_string();
                let pid = match self.by_key.get(&key) {
                    Some(&pid) => pid,
                    None => {
                        let pid = self.predicates.len();
                        self.predicates.push(SharedPredicate {
                            predicate: pred.clone(),
                            subscribers: Vec::new(),
                        });
                        self.by_key.insert(key, pid);
                        self.by_attr.entry(pred.attr.clone()).or_default().push(pid);
                        pid
                    }
                };
                if let Some(shared) = self.predicates.get_mut(pid) {
                    shared.subscribers.push(id);
                }
            }
        }
        self.filters.insert(id, filter);
    }

    fn remove(&mut self, id: SubId) -> bool {
        let Some(filter) = self.filters.remove(&id) else {
            return false;
        };
        if filter.is_empty() {
            self.match_all.retain(|&s| s != id);
        } else {
            self.required.remove(&id);
            for pred in filter.predicates() {
                if let Some(shared) = self
                    .by_key
                    .get(&pred.to_string())
                    .and_then(|&pid| self.predicates.get_mut(pid))
                {
                    let subs = &mut shared.subscribers;
                    if let Some(pos) = subs.iter().position(|&s| s == id) {
                        subs.swap_remove(pos);
                    }
                }
            }
        }
        true
    }

    fn matches(&self, publication: &Publication) -> Vec<SubId> {
        let mut counts: BTreeMap<SubId, usize> = BTreeMap::new();
        for (attr, value) in publication.iter() {
            if let Some(pids) = self.by_attr.get(attr) {
                for &pid in pids {
                    let Some(shared) = self.predicates.get(pid) else {
                        continue;
                    };
                    if shared.subscribers.is_empty() {
                        continue;
                    }
                    if shared.predicate.eval(value) {
                        for &sub in &shared.subscribers {
                            *counts.entry(sub).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut out: Vec<SubId> = counts
            .into_iter()
            .filter(|(sub, n)| self.required.get(sub) == Some(n))
            .map(|(sub, _)| sub)
            .collect();
        out.extend_from_slice(&self.match_all);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn len(&self) -> usize {
        self.filters.len()
    }
}

/// Bucket-indexed matcher: each filter is indexed under its *least
/// common* equality predicate, so a publication only evaluates the
/// filters whose discriminating `(attribute, value)` pair it actually
/// carries. On the paper's stock workload this reduces per-publication
/// work from "every subscription sharing `[class,=,'STOCK']`" to "the
/// subscriptions of one symbol" — the difference between simulating 80
/// brokers in minutes and in seconds.
///
/// Filters with no equality predicate fall back to a scan list. The
/// index is rebuilt lazily after inserts/removals.
#[derive(Debug, Clone, Default)]
pub struct BucketMatcher {
    filters: BTreeMap<SubId, Filter>,
    dirty: bool,
    /// attribute → value → subscriptions bucketed under that equality
    /// pair. Nested (rather than keyed by tuple) so the match path can
    /// look buckets up by `&str` without allocating key strings.
    buckets: BTreeMap<String, BTreeMap<String, Vec<SubId>>>,
    scan: Vec<SubId>,
}

impl BucketMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical bucket key of a value: strings unquoted (so the match
    /// path can look them up by `&str`), everything else via `Display`.
    /// A numeric key colliding with an equal-looking string key only
    /// costs a wasted filter evaluation — candidates are verified with
    /// the full filter before they match.
    fn bucket_key(v: &crate::value::Value) -> String {
        match v.as_str() {
            Some(s) => s.to_string(),
            None => v.to_string(),
        }
    }

    fn rebuild(&mut self) {
        self.buckets.clear();
        self.scan.clear();
        // Frequency of each equality (attr, value) pair.
        let mut freq: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in self.filters.values() {
            for p in f.predicates() {
                if p.op == crate::predicate::Op::Eq {
                    *freq
                        .entry((p.attr.clone(), Self::bucket_key(&p.value)))
                        .or_insert(0) += 1;
                }
            }
        }
        for (&id, f) in &self.filters {
            // Index under the rarest equality predicate.
            let key = f
                .predicates()
                .iter()
                .filter(|p| p.op == crate::predicate::Op::Eq)
                .map(|p| (p.attr.clone(), Self::bucket_key(&p.value)))
                .min_by_key(|k| freq.get(k).copied().unwrap_or(0));
            match key {
                Some((attr, value)) => self
                    .buckets
                    .entry(attr)
                    .or_default()
                    .entry(value)
                    .or_default()
                    .push(id),
                None => self.scan.push(id),
            }
        }
        for by_value in self.buckets.values_mut() {
            for b in by_value.values_mut() {
                b.sort_unstable();
            }
        }
        self.scan.sort_unstable();
        self.dirty = false;
    }

    /// Number of index buckets (diagnostic; rebuilds if stale).
    pub fn bucket_count(&mut self) -> usize {
        if self.dirty {
            self.rebuild();
        }
        self.buckets.values().map(|m| m.len()).sum()
    }
}

impl Matcher for BucketMatcher {
    fn insert(&mut self, id: SubId, filter: Filter) {
        self.filters.insert(id, filter);
        self.dirty = true;
    }

    fn remove(&mut self, id: SubId) -> bool {
        let hit = self.filters.remove(&id).is_some();
        if hit {
            self.dirty = true;
        }
        hit
    }

    fn matches(&self, publication: &Publication) -> Vec<SubId> {
        // Interior mutability would complicate the trait; rebuild into a
        // fresh index when stale instead (inserts come in bursts, and
        // brokers match far more often than they subscribe).
        if self.dirty {
            let mut fresh = self.clone();
            fresh.rebuild();
            return fresh.matches(publication);
        }
        // An owned-result convenience over `matches_into`; hot callers
        // reuse a buffer through that entry point instead.
        let mut out: Vec<SubId> = Vec::new();
        self.matches_into(publication, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.filters.len()
    }
}

/// Mutable-access variant used by hot paths: rebuilds in place when
/// stale, then matches without cloning.
impl BucketMatcher {
    /// Like [`Matcher::matches`] but rebuilds the index in place first.
    pub fn matches_mut(&mut self, publication: &Publication) -> Vec<SubId> {
        if self.dirty {
            self.rebuild();
        }
        self.matches(publication)
    }

    /// Appends the matching subscription ids to `out` (cleared first),
    /// sorted and deduplicated. The allocation-free match path: bucket
    /// lookups borrow the publication's attribute and value strings,
    /// and callers reuse `out` across publications.
    ///
    /// The index must be fresh (see [`BucketMatcher::ensure_built`]);
    /// a stale index matches against the last built state.
    pub fn matches_into(&self, publication: &Publication, out: &mut Vec<SubId>) {
        out.clear();
        for (attr, value) in publication.iter() {
            let Some(by_value) = self.buckets.get(attr) else {
                continue;
            };
            let bucket = match value.as_str() {
                Some(s) => by_value.get(s),
                // Numeric/bool equality buckets are rare (the stock
                // workload buckets on strings); rendering the value is
                // the one allocation left on the match path.
                None => by_value.get(value.to_string().as_str()),
            };
            for &id in bucket.into_iter().flatten() {
                if self
                    .filters
                    .get(&id)
                    .is_some_and(|f| f.matches(publication))
                {
                    out.push(id);
                }
            }
        }
        for &id in &self.scan {
            if self
                .filters
                .get(&id)
                .is_some_and(|f| f.matches(publication))
            {
                out.push(id);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Rebuilds the index now if stale (call after a subscribe burst so
    /// later `&self` matches never hit the clone-on-stale path).
    pub fn ensure_built(&mut self) {
        if self.dirty {
            self.rebuild();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::stock_template;
    use crate::ids::{AdvId, MsgId};
    use crate::predicate::{Op, Predicate};

    fn quote(symbol: &str, low: f64, volume: i64) -> Publication {
        Publication::builder(AdvId::new(1), MsgId::new(1))
            .attr("class", "STOCK")
            .attr("symbol", symbol)
            .attr("low", low)
            .attr("volume", volume)
            .build()
    }

    fn engines() -> (NaiveMatcher, CountingMatcher) {
        (NaiveMatcher::new(), CountingMatcher::new())
    }

    fn both_match(naive: &NaiveMatcher, counting: &CountingMatcher, p: &Publication) -> Vec<SubId> {
        let a = naive.matches(p);
        let b = counting.matches(p);
        assert_eq!(a, b, "engines disagree on {p}");
        a
    }

    #[test]
    fn exact_and_range_matching() {
        let (mut n, mut c) = engines();
        for (m, engine) in [(&mut n as &mut dyn Matcher, "n"), (&mut c, "c")] {
            let _ = engine;
            m.insert(SubId::new(1), stock_template("YHOO"));
            m.insert(
                SubId::new(2),
                stock_template("YHOO").and(Predicate::new("low", Op::Lt, 18.0)),
            );
            m.insert(SubId::new(3), stock_template("GOOG"));
        }
        let hits = both_match(&n, &c, &quote("YHOO", 17.5, 100));
        assert_eq!(hits, vec![SubId::new(1), SubId::new(2)]);
        let hits = both_match(&n, &c, &quote("YHOO", 19.0, 100));
        assert_eq!(hits, vec![SubId::new(1)]);
        let hits = both_match(&n, &c, &quote("GOOG", 1.0, 100));
        assert_eq!(hits, vec![SubId::new(3)]);
    }

    #[test]
    fn empty_filter_matches_everything() {
        let (mut n, mut c) = engines();
        n.insert(SubId::new(9), Filter::new());
        c.insert(SubId::new(9), Filter::new());
        let hits = both_match(&n, &c, &quote("YHOO", 1.0, 1));
        assert_eq!(hits, vec![SubId::new(9)]);
    }

    #[test]
    fn remove_unregisters() {
        let (mut n, mut c) = engines();
        n.insert(SubId::new(1), stock_template("YHOO"));
        c.insert(SubId::new(1), stock_template("YHOO"));
        assert!(n.remove(SubId::new(1)));
        assert!(c.remove(SubId::new(1)));
        assert!(!c.remove(SubId::new(1)));
        assert!(both_match(&n, &c, &quote("YHOO", 1.0, 1)).is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_filter() {
        let (mut n, mut c) = engines();
        for m in [&mut n as &mut dyn Matcher, &mut c] {
            m.insert(SubId::new(1), stock_template("YHOO"));
            m.insert(SubId::new(1), stock_template("GOOG"));
        }
        assert!(both_match(&n, &c, &quote("YHOO", 1.0, 1)).is_empty());
        assert_eq!(
            both_match(&n, &c, &quote("GOOG", 1.0, 1)),
            vec![SubId::new(1)]
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_predicates_are_deduplicated() {
        let mut c = CountingMatcher::new();
        for i in 0..100 {
            c.insert(SubId::new(i), stock_template("YHOO"));
        }
        // 100 subscriptions share exactly two predicates.
        assert_eq!(c.shared_predicate_count(), 2);
        assert_eq!(c.matches(&quote("YHOO", 1.0, 1)).len(), 100);
        assert!(c.filter(SubId::new(5)).is_some());
    }

    #[test]
    fn volume_inequality_subscriptions() {
        let (mut n, mut c) = engines();
        for m in [&mut n as &mut dyn Matcher, &mut c] {
            m.insert(
                SubId::new(1),
                stock_template("YHOO").and(Predicate::new("volume", Op::Gt, 1000i64)),
            );
        }
        assert_eq!(
            both_match(&n, &c, &quote("YHOO", 5.0, 6200)),
            vec![SubId::new(1)]
        );
        assert!(both_match(&n, &c, &quote("YHOO", 5.0, 500)).is_empty());
    }

    #[test]
    fn bucket_matcher_agrees_with_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let symbols = ["YHOO", "GOOG", "IBM"];
        let mut naive = NaiveMatcher::new();
        let mut bucket = BucketMatcher::new();
        for i in 0..150 {
            let sym = symbols[rng.gen_range(0..symbols.len())];
            let mut f = stock_template(sym);
            if rng.gen_bool(0.5) {
                f = f.and(Predicate::new("low", Op::Lt, rng.gen_range(0.0..100.0)));
            }
            naive.insert(SubId::new(i), f.clone());
            bucket.insert(SubId::new(i), f);
        }
        // One matcher with an empty filter (scan list).
        naive.insert(SubId::new(900), Filter::new());
        bucket.insert(SubId::new(900), Filter::new());
        for k in 0..100 {
            let sym = symbols[k % symbols.len()];
            let p = quote(sym, (k as f64) % 100.0, 10);
            assert_eq!(naive.matches(&p), bucket.matches_mut(&p), "pub {k}");
            // Immutable (clone-on-stale) path agrees too.
            assert_eq!(naive.matches(&p), bucket.matches(&p));
        }
        assert!(bucket.bucket_count() >= symbols.len());
        assert!(bucket.remove(SubId::new(900)));
        assert!(!bucket.remove(SubId::new(900)));
        assert_eq!(bucket.len(), 150);
    }

    #[test]
    fn bucket_matcher_indexes_under_rarest_predicate() {
        // 99 subs share class=STOCK; each has a unique symbol. The
        // symbol predicate must be chosen, keeping buckets tiny.
        let mut bucket = BucketMatcher::new();
        for i in 0..99u64 {
            bucket.insert(SubId::new(i), stock_template(&format!("S{i}")));
        }
        assert_eq!(bucket.bucket_count(), 99);
        let p = Publication::builder(AdvId::new(1), MsgId::new(1))
            .attr("class", "STOCK")
            .attr("symbol", "S42")
            .build();
        assert_eq!(bucket.matches_mut(&p), vec![SubId::new(42)]);
    }

    #[test]
    fn engines_agree_on_random_workload() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let symbols = ["YHOO", "GOOG", "IBM", "MSFT"];
        let (mut n, mut c) = engines();
        for i in 0..200 {
            let sym = symbols[rng.gen_range(0..symbols.len())];
            let mut f = stock_template(sym);
            if rng.gen_bool(0.6) {
                let attr = ["low", "high", "volume"][rng.gen_range(0..3)];
                let op = [Op::Lt, Op::Gt, Op::Le, Op::Ge][rng.gen_range(0..4)];
                f = f.and(Predicate::new(attr, op, rng.gen_range(0.0..100.0)));
            }
            n.insert(SubId::new(i), f.clone());
            c.insert(SubId::new(i), f);
        }
        for _ in 0..200 {
            let sym = symbols[rng.gen_range(0..symbols.len())];
            let p = Publication::builder(AdvId::new(1), MsgId::new(1))
                .attr("class", "STOCK")
                .attr("symbol", sym)
                .attr("low", rng.gen_range(0.0..100.0))
                .attr("high", rng.gen_range(0.0..100.0))
                .attr("volume", rng.gen_range(0.0..100.0))
                .build();
            both_match(&n, &c, &p);
        }
    }
}
