//! Parser for the PADRES-style textual filter syntax.
//!
//! Subscriptions, advertisements and publications in PADRES are written
//! as comma-separated bracketed triples:
//!
//! ```text
//! [class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,1000]
//! ```
//!
//! Publications use pairs instead: `[class,'STOCK'],[open,18.37]`.
//! This module parses both forms, enabling text-driven tooling (PANDA
//! topology files, REPLs, test fixtures).

use crate::filter::Filter;
use crate::ids::{AdvId, MsgId};
use crate::message::Publication;
use crate::predicate::{Op, Predicate};
use crate::value::Value;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError {
    /// Byte offset of the failure.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseFilterError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseFilterError {
        ParseFilterError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        self.src.get(self.pos..).unwrap_or("")
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, token: char) -> Result<(), ParseFilterError> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected '{token}'")))
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    /// Reads until one of `stops`, trimming whitespace.
    fn until(&mut self, stops: &[char]) -> &'a str {
        self.skip_ws();
        let rest = self.rest();
        let end = rest.find(|c| stops.contains(&c)).unwrap_or(rest.len());
        let token = rest.get(..end).unwrap_or(rest).trim_end();
        self.pos += end;
        token
    }

    fn quoted_or_bare(&mut self, stops: &[char]) -> Result<Value, ParseFilterError> {
        self.skip_ws();
        if self.rest().starts_with('\'') {
            self.pos += 1;
            let rest = self.rest();
            let Some(end) = rest.find('\'') else {
                return Err(self.error("unterminated string literal"));
            };
            let s = rest.get(..end).unwrap_or("");
            self.pos += end + 1;
            return Ok(Value::str(s));
        }
        let token = self.until(stops);
        if token.is_empty() {
            return Err(self.error("expected a value"));
        }
        Ok(parse_bare_value(token))
    }
}

fn parse_bare_value(token: &str) -> Value {
    if let Ok(i) = token.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = token.parse::<f64>() {
        return Value::Float(f);
    }
    match token {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::str(other),
    }
}

fn parse_op(token: &str) -> Option<Op> {
    Some(match token {
        "=" | "eq" => Op::Eq,
        "!=" | "neq" | "<>" => Op::Neq,
        "<" | "lt" => Op::Lt,
        "<=" | "le" => Op::Le,
        ">" | "gt" => Op::Gt,
        ">=" | "ge" => Op::Ge,
        "str-prefix" => Op::Prefix,
        "str-suffix" => Op::Suffix,
        "str-contains" => Op::Contains,
        "isPresent" | "is-present" => Op::Present,
        _ => return None,
    })
}

/// Parses a filter: one or more `[attr,op,value]` triples separated by
/// commas.
///
/// # Errors
/// Returns a [`ParseFilterError`] describing the first syntax problem.
///
/// # Examples
/// ```
/// use greenps_pubsub::parser::parse_filter;
/// let f = parse_filter("[class,=,'STOCK'],[volume,>,1000]")?;
/// assert_eq!(f.len(), 2);
/// # Ok::<(), greenps_pubsub::parser::ParseFilterError>(())
/// ```
pub fn parse_filter(src: &str) -> Result<Filter, ParseFilterError> {
    let mut cur = Cursor::new(src);
    let mut filter = Filter::new();
    loop {
        cur.eat('[')?;
        let attr = cur.until(&[',']).to_string();
        if attr.is_empty() {
            return Err(cur.error("expected an attribute name"));
        }
        cur.eat(',')?;
        let op_token = cur.until(&[',', ']']);
        let Some(op) = parse_op(op_token) else {
            return Err(cur.error(format!("unknown operator '{op_token}'")));
        };
        let value = if op == Op::Present {
            // isPresent may omit the value operand.
            cur.skip_ws();
            if cur.rest().starts_with(',') {
                cur.eat(',')?;
                cur.quoted_or_bare(&[']'])?
            } else {
                Value::Bool(true)
            }
        } else {
            cur.eat(',')?;
            cur.quoted_or_bare(&[']'])?
        };
        cur.eat(']')?;
        filter = filter.and(Predicate { attr, op, value });
        if cur.at_end() {
            return Ok(filter);
        }
        cur.eat(',')?;
    }
}

/// Parses a publication: `[attr,value]` pairs, with identity supplied by
/// the caller.
///
/// # Errors
/// Returns a [`ParseFilterError`] describing the first syntax problem.
///
/// # Examples
/// ```
/// use greenps_pubsub::ids::{AdvId, MsgId};
/// use greenps_pubsub::parser::parse_publication;
/// let p = parse_publication("[class,'STOCK'],[open,18.37]", AdvId::new(1), MsgId::new(7))?;
/// assert_eq!(p.get("open"), Some(&18.37.into()));
/// # Ok::<(), greenps_pubsub::parser::ParseFilterError>(())
/// ```
pub fn parse_publication(
    src: &str,
    adv: AdvId,
    msg: MsgId,
) -> Result<Publication, ParseFilterError> {
    let mut cur = Cursor::new(src);
    let mut builder = Publication::builder(adv, msg);
    loop {
        cur.eat('[')?;
        let attr = cur.until(&[',']).to_string();
        if attr.is_empty() {
            return Err(cur.error("expected an attribute name"));
        }
        cur.eat(',')?;
        let value = cur.quoted_or_bare(&[']'])?;
        cur.eat(']')?;
        builder = builder.attr(attr, value);
        if cur.at_end() {
            return Ok(builder.build());
        }
        cur.eat(',')?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_subscription() {
        let f = parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.37]").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.to_string(),
            "[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.37]"
        );
    }

    #[test]
    fn round_trips_display_form() {
        for src in [
            "[class,=,'STOCK']",
            "[volume,>,1000]",
            "[volume,>=,1000],[volume,<=,2000]",
            "[name,str-prefix,'YH']",
            "[x,!=,5]",
        ] {
            let f = parse_filter(src).unwrap();
            assert_eq!(f.to_string(), src, "round trip {src}");
            let again = parse_filter(&f.to_string()).unwrap();
            assert_eq!(f, again);
        }
    }

    #[test]
    fn word_operators_and_whitespace() {
        let f = parse_filter(" [ volume , gt , 1000 ] , [ class , eq , 'STOCK' ] ").unwrap();
        assert_eq!(f.predicates()[0].op, Op::Gt);
        assert_eq!(f.predicates()[0].value, Value::Int(1000));
        assert_eq!(f.predicates()[1].value, Value::str("STOCK"));
    }

    #[test]
    fn is_present_with_and_without_operand() {
        let f = parse_filter("[open,isPresent]").unwrap();
        assert_eq!(f.predicates()[0].op, Op::Present);
        let f = parse_filter("[open,isPresent,true]").unwrap();
        assert_eq!(f.predicates()[0].op, Op::Present);
    }

    #[test]
    fn value_types_inferred() {
        let f = parse_filter("[a,=,1],[b,=,1.5],[c,=,true],[d,=,'x'],[e,=,hello]").unwrap();
        let vals: Vec<&Value> = f.predicates().iter().map(|p| &p.value).collect();
        assert_eq!(vals[0], &Value::Int(1));
        assert_eq!(vals[1], &Value::Float(1.5));
        assert_eq!(vals[2], &Value::Bool(true));
        assert_eq!(vals[3], &Value::str("x"));
        assert_eq!(vals[4], &Value::str("hello"));
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = parse_filter("[class=,'STOCK']").unwrap_err();
        assert!(e.position > 0);
        assert!(e.to_string().contains("parse error"));
        assert!(parse_filter("").is_err());
        assert!(parse_filter("[a,=,1],").is_err());
        assert!(parse_filter("[a,??,1]").is_err());
        assert!(parse_filter("[a,=,'unterminated]").is_err());
        assert!(parse_filter("[,=,1]").is_err());
    }

    #[test]
    fn parses_paper_publication() {
        let p = parse_publication(
            "[class,'STOCK'],[symbol,'YHOO'],[open,18.37],[volume,6200],\
             [closeEqualsLow,'true'],[date,'5-Sep-96']",
            AdvId::new(2),
            MsgId::new(144),
        )
        .unwrap();
        assert_eq!(p.adv_id, AdvId::new(2));
        assert_eq!(p.msg_id, MsgId::new(144));
        assert_eq!(p.get("symbol"), Some(&Value::str("YHOO")));
        assert_eq!(p.get("volume"), Some(&Value::Int(6200)));
        // quoted 'true' stays a string, like the paper's sample
        assert_eq!(p.get("closeEqualsLow"), Some(&Value::str("true")));
    }

    #[test]
    fn parsed_filter_matches_parsed_publication() {
        let f = parse_filter("[class,=,'STOCK'],[volume,>,1000]").unwrap();
        let p = parse_publication(
            "[class,'STOCK'],[volume,6200]",
            AdvId::new(1),
            MsgId::new(0),
        )
        .unwrap();
        assert!(f.matches(&p));
        let q = parse_publication("[class,'STOCK'],[volume,500]", AdvId::new(1), MsgId::new(1))
            .unwrap();
        assert!(!f.matches(&q));
    }
}
