//! Filters — conjunctions of predicates.
//!
//! Both subscriptions and advertisements are [`Filter`]s:
//!
//! * a **subscription** filter describes the publications a subscriber
//!   wants, e.g. `[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.0]`;
//! * an **advertisement** filter describes the publications a publisher
//!   will emit, usually with presence or range predicates.
//!
//! Filters support evaluation against publications, plus the *covering*
//! and *overlap* relations needed by advertisement-based routing and the
//! poset of Phase 2.

use crate::message::Publication;
use crate::predicate::{Op, Predicate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunction of [`Predicate`]s over distinct or repeated attributes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// Creates an empty filter, which matches every publication.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a filter from predicates.
    pub fn from_predicates(predicates: impl IntoIterator<Item = Predicate>) -> Self {
        Self {
            predicates: predicates.into_iter().collect(),
        }
    }

    /// Appends a predicate (builder style).
    #[must_use]
    pub fn and(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// The predicates of this filter.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when the filter has no predicates (matches everything).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluates the filter against a publication: every predicate must
    /// be satisfied by the publication's value for its attribute, and
    /// the attribute must be present.
    pub fn matches(&self, publication: &Publication) -> bool {
        self.predicates
            .iter()
            .all(|p| publication.get(&p.attr).is_some_and(|v| p.eval(v)))
    }

    /// True when every publication matching `other` also matches `self`
    /// (conservative — only provable coverings return `true`).
    ///
    /// A filter covers another when each of its predicates is implied by
    /// some predicate of the other filter on the same attribute.
    pub fn covers(&self, other: &Filter) -> bool {
        self.predicates
            .iter()
            .all(|p1| other.predicates.iter().any(|p2| p1.covers(p2)))
    }

    /// True when some publication can match both filters (conservative —
    /// only provably disjoint pairs return `false`).
    pub fn overlaps(&self, other: &Filter) -> bool {
        for p1 in &self.predicates {
            for p2 in &other.predicates {
                if p1.attr == p2.attr && !p1.overlaps(p2) {
                    return false;
                }
            }
        }
        true
    }

    /// Subscription-to-advertisement intersection test used by routing:
    /// a subscription can only be satisfied by a publisher whose
    /// advertisement (a) declares every attribute the subscription
    /// constrains and (b) overlaps it value-wise.
    pub fn intersects_advertisement(&self, adv: &Filter) -> bool {
        let declares = |attr: &str| adv.predicates.iter().any(|p| p.attr == attr);
        self.predicates.iter().all(|p| declares(&p.attr)) && self.overlaps(adv)
    }

    /// Classifies the relationship between two filters from the
    /// *language* (the classical poset approach the paper contrasts
    /// with its bit-vector method). Conservative in the covering tests,
    /// so `Equal`/`Superset`/`Subset` are only reported when provable;
    /// `Empty` is reported only when the filters provably cannot both
    /// match a publication.
    pub fn relationship(&self, other: &Filter) -> FilterRelation {
        let ab = self.covers(other);
        let ba = other.covers(self);
        match (ab, ba) {
            (true, true) => FilterRelation::Equal,
            (true, false) => FilterRelation::Superset,
            (false, true) => FilterRelation::Subset,
            (false, false) => {
                if self.overlaps(other) {
                    FilterRelation::Intersect
                } else {
                    FilterRelation::Empty
                }
            }
        }
    }

    /// Approximate serialized size in bytes for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        self.predicates
            .iter()
            .map(|p| p.attr.len() + 1 + p.value.wire_size())
            .sum()
    }

    /// A canonical string form usable as a hash/equality key.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
        parts.sort();
        parts.join(",")
    }
}

impl FromIterator<Predicate> for Filter {
    fn from_iter<T: IntoIterator<Item = Predicate>>(iter: T) -> Self {
        Self::from_predicates(iter)
    }
}

impl Extend<Predicate> for Filter {
    fn extend<T: IntoIterator<Item = Predicate>>(&mut self, iter: T) {
        self.predicates.extend(iter);
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// How two filters relate, derived from the subscription language (cf.
/// `greenps_profile`'s bit-vector `Relation`, which the paper uses
/// instead to stay language-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterRelation {
    /// Each filter provably covers the other.
    Equal,
    /// `self` provably covers `other`.
    Superset,
    /// `other` provably covers `self`.
    Subset,
    /// Neither covers the other but they may share matches.
    Intersect,
    /// Provably disjoint.
    Empty,
}

/// Builds the stock-quote subscription template from the paper:
/// `[class,=,'STOCK'],[symbol,=,<symbol>]`.
pub fn stock_template(symbol: &str) -> Filter {
    Filter::new()
        .and(Predicate::eq("class", "STOCK"))
        .and(Predicate::eq("symbol", symbol))
}

/// Builds the paper's advertisement for a stock publisher: class and
/// symbol pinned, every numeric/derived attribute declared present.
pub fn stock_advertisement(symbol: &str) -> Filter {
    let mut f = stock_template(symbol);
    for attr in [
        "open",
        "high",
        "low",
        "close",
        "volume",
        "date",
        "openClose%Diff",
        "highLow%Diff",
        "closeEqualsLow",
        "closeEqualsHigh",
    ] {
        f = f.and(Predicate::new(attr, Op::Present, true));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AdvId, MsgId};
    use crate::message::Publication;
    use crate::value::Value;

    fn yhoo_pub() -> Publication {
        Publication::builder(AdvId::new(1), MsgId::new(75))
            .attr("class", "STOCK")
            .attr("symbol", "YHOO")
            .attr("open", 18.37)
            .attr("low", 18.37)
            .attr("volume", 6200i64)
            .build()
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(Filter::new().matches(&yhoo_pub()));
    }

    #[test]
    fn template_matches_same_symbol_only() {
        assert!(stock_template("YHOO").matches(&yhoo_pub()));
        assert!(!stock_template("GOOG").matches(&yhoo_pub()));
    }

    #[test]
    fn missing_attribute_fails_match() {
        let f = Filter::new().and(Predicate::eq("nonexistent", 1i64));
        assert!(!f.matches(&yhoo_pub()));
    }

    #[test]
    fn inequality_template_from_paper() {
        // 60% of subscriptions add an inequality attribute, e.g. [low,<,x]
        let f = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 19.0));
        assert!(f.matches(&yhoo_pub()));
        let tight = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 18.0));
        assert!(!tight.matches(&yhoo_pub()));
    }

    #[test]
    fn covering_between_templates() {
        let broad = stock_template("YHOO");
        let narrow = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 18.0));
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.covers(&broad));
    }

    #[test]
    fn empty_filter_covers_all() {
        assert!(Filter::new().covers(&stock_template("YHOO")));
        assert!(!stock_template("YHOO").covers(&Filter::new()));
    }

    #[test]
    fn overlap_between_sibling_ranges() {
        let lo = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 20.0));
        let hi = stock_template("YHOO").and(Predicate::new("low", Op::Gt, 10.0));
        assert!(lo.overlaps(&hi));
        let disjoint = stock_template("YHOO").and(Predicate::new("low", Op::Gt, 30.0));
        assert!(!lo.overlaps(&disjoint));
    }

    #[test]
    fn different_symbols_do_not_overlap() {
        assert!(!stock_template("YHOO").overlaps(&stock_template("GOOG")));
    }

    #[test]
    fn subscription_advertisement_intersection() {
        let adv = stock_advertisement("YHOO");
        let sub = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 19.0));
        assert!(sub.intersects_advertisement(&adv));
        // wrong symbol
        assert!(!stock_template("GOOG").intersects_advertisement(&adv));
        // attribute the advertisement does not declare
        let odd = stock_template("YHOO").and(Predicate::eq("undeclared", 1i64));
        assert!(!odd.intersects_advertisement(&adv));
    }

    #[test]
    fn filter_relationship_classification() {
        use super::FilterRelation;
        let broad = stock_template("YHOO");
        let narrow = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 18.0));
        assert_eq!(broad.relationship(&narrow), FilterRelation::Superset);
        assert_eq!(narrow.relationship(&broad), FilterRelation::Subset);
        assert_eq!(broad.relationship(&broad.clone()), FilterRelation::Equal);
        assert_eq!(
            stock_template("YHOO").relationship(&stock_template("GOOG")),
            FilterRelation::Empty
        );
        let lo = stock_template("YHOO").and(Predicate::new("low", Op::Lt, 20.0));
        let hi = stock_template("YHOO").and(Predicate::new("low", Op::Gt, 10.0));
        assert_eq!(lo.relationship(&hi), FilterRelation::Intersect);
    }

    #[test]
    fn display_matches_paper_example() {
        let f = Filter::new()
            .and(Predicate::eq("class", "STOCK"))
            .and(Predicate::eq("symbol", "YHOO"));
        assert_eq!(f.to_string(), "[class,=,'STOCK'],[symbol,=,'YHOO']");
    }

    #[test]
    fn canonical_key_is_order_insensitive() {
        let a = Filter::new()
            .and(Predicate::eq("class", "STOCK"))
            .and(Predicate::eq("symbol", "YHOO"));
        let b = Filter::new()
            .and(Predicate::eq("symbol", "YHOO"))
            .and(Predicate::eq("class", "STOCK"));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn wire_size_counts_attrs_and_values() {
        let f = Filter::new().and(Predicate::eq("symbol", "YHOO"));
        assert_eq!(f.wire_size(), "symbol".len() + 1 + "YHOO".len());
    }

    #[test]
    fn collect_from_iterator() {
        let f: Filter = vec![Predicate::eq("a", 1i64)].into_iter().collect();
        assert_eq!(f.len(), 1);
        let mut g = Filter::new();
        g.extend(vec![Predicate::eq("b", Value::Int(2))]);
        assert_eq!(g.len(), 1);
    }
}
