//! # greenps-pubsub
//!
//! Content-based publish/subscribe substrate: the attribute/predicate
//! language, publication/advertisement/subscription messages, matching
//! engines, and advertisement-based routing tables.
//!
//! This crate plays the role PADRES plays in the paper — the
//! filter-based content-based pub/sub system the resource-allocation
//! algorithms are built on. It is deliberately free of any networking or
//! timing concerns: brokers (in `greenps-broker`) compose these tables
//! with the `greenps-simnet` discrete-event runtime or the live threaded
//! runtime.
//!
//! ## Example
//!
//! ```
//! use greenps_pubsub::{
//!     filter::{stock_advertisement, stock_template},
//!     ids::{AdvId, MsgId, SubId},
//!     message::{Advertisement, Publication, Subscription},
//!     routing::RoutingTables,
//! };
//!
//! let mut rt: RoutingTables<u32> = RoutingTables::new();
//! rt.insert_advertisement(
//!     Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
//!     0, // hop the advertisement came from
//! );
//! rt.insert_subscription(
//!     Subscription::new(SubId::new(1), stock_template("YHOO")),
//!     1, // hop the subscription came from
//! );
//! let quote = Publication::builder(AdvId::new(1), MsgId::new(75))
//!     .attr("class", "STOCK")
//!     .attr("symbol", "YHOO")
//!     .attr("close", 18.37)
//!     .build();
//! assert_eq!(rt.route_publication(&quote, Some(&0)), vec![1]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod filter;
pub mod ids;
pub mod matching;
pub mod message;
pub mod parser;
pub mod predicate;
pub mod routing;
pub mod value;

pub use filter::{Filter, FilterRelation};
pub use ids::{AdvId, BrokerId, ClientId, MsgId, SubId};
pub use matching::{BucketMatcher, CountingMatcher, Matcher, NaiveMatcher};
pub use message::{Advertisement, Message, Publication, Subscription};
pub use parser::{parse_filter, parse_publication, ParseFilterError};
pub use predicate::{Op, Predicate};
pub use value::Value;
