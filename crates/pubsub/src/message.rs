//! Message types exchanged in the publish/subscribe network.
//!
//! Publications carry attribute/value pairs plus the publisher's
//! advertisement id and a per-publisher message id — the two fields the
//! paper's bit-vector profiling framework relies on (Section III-B).

use crate::filter::Filter;
use crate::ids::{AdvId, MsgId, SubId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable publication message.
///
/// Publications are reference-counted so a broker can forward one
/// message to many neighbors without copying the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publication {
    /// Advertisement id identifying the publisher (paper §III-B).
    pub adv_id: AdvId,
    /// Per-publisher sequence number appended by the publisher.
    pub msg_id: MsgId,
    attrs: Arc<Vec<(String, Value)>>,
}

impl Publication {
    /// Starts building a publication for the given publisher identity.
    pub fn builder(adv_id: AdvId, msg_id: MsgId) -> PublicationBuilder {
        PublicationBuilder {
            adv_id,
            msg_id,
            attrs: Vec::new(),
        }
    }

    /// Looks up the value of an attribute.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.attrs.iter().find(|(a, _)| a == attr).map(|(_, v)| v)
    }

    /// Iterates over `(attribute, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(a, v)| (a.as_str(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the publication carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Approximate serialized size in bytes, used for bandwidth
    /// accounting in the simulator (ids + attribute payload).
    pub fn wire_size(&self) -> usize {
        16 + self
            .attrs
            .iter()
            .map(|(a, v)| a.len() + 1 + v.wire_size())
            .sum::<usize>()
    }
}

impl fmt::Display for Publication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}:", self.adv_id, self.msg_id)?;
        for (i, (a, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "[{a},{v}]")?;
        }
        Ok(())
    }
}

/// Builder for [`Publication`].
#[derive(Debug)]
pub struct PublicationBuilder {
    adv_id: AdvId,
    msg_id: MsgId,
    attrs: Vec<(String, Value)>,
}

impl PublicationBuilder {
    /// Adds an attribute/value pair; setting an attribute twice
    /// replaces the earlier value (publications are attribute maps).
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        let name = name.into();
        let value = value.into();
        match self.attrs.iter_mut().find(|(a, _)| *a == name) {
            Some(slot) => slot.1 = value,
            None => self.attrs.push((name, value)),
        }
        self
    }

    /// Finalizes the publication.
    pub fn build(self) -> Publication {
        Publication {
            adv_id: self.adv_id,
            msg_id: self.msg_id,
            attrs: Arc::new(self.attrs),
        }
    }
}

/// An advertisement: a publisher's declaration of the publications it
/// will emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advertisement {
    /// Globally unique advertisement id.
    pub id: AdvId,
    /// The filter describing future publications.
    pub filter: Filter,
}

impl Advertisement {
    /// Creates an advertisement.
    pub fn new(id: AdvId, filter: Filter) -> Self {
        Self { id, filter }
    }
}

/// A subscription registered by a subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Globally unique subscription id.
    pub id: SubId,
    /// The filter describing wanted publications.
    pub filter: Filter,
}

impl Subscription {
    /// Creates a subscription.
    pub fn new(id: SubId, filter: Filter) -> Self {
        Self { id, filter }
    }
}

/// The messages a content-based broker routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Data message flowing from publishers to matching subscribers.
    Publication(Publication),
    /// Advertisement flooded through the overlay.
    Advertise(Advertisement),
    /// Retract an advertisement.
    Unadvertise(AdvId),
    /// Subscription routed toward matching advertisements.
    Subscribe(Subscription),
    /// Retract a subscription.
    Unsubscribe(SubId),
}

impl Message {
    /// Approximate serialized size in bytes for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Publication(p) => p.wire_size(),
            Message::Advertise(a) => 8 + a.filter.wire_size(),
            Message::Subscribe(s) => 8 + s.filter.wire_size(),
            Message::Unadvertise(_) | Message::Unsubscribe(_) => 8,
        }
    }

    /// True for publication (data-plane) messages.
    pub fn is_publication(&self) -> bool {
        matches!(self, Message::Publication(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::stock_template;

    #[test]
    fn builder_preserves_attribute_order_and_lookup() {
        let p = Publication::builder(AdvId::new(2), MsgId::new(144))
            .attr("class", "STOCK")
            .attr("close", 18.37)
            .build();
        assert_eq!(p.get("class"), Some(&Value::str("STOCK")));
        assert_eq!(p.get("close"), Some(&Value::Float(18.37)));
        assert_eq!(p.get("missing"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn publication_display_includes_identity() {
        let p = Publication::builder(AdvId::new(1), MsgId::new(75))
            .attr("symbol", "YHOO")
            .build();
        assert_eq!(p.to_string(), "Adv1#75:[symbol,'YHOO']");
    }

    #[test]
    fn clone_shares_payload() {
        let p = Publication::builder(AdvId::new(1), MsgId::new(1))
            .attr("a", 1i64)
            .build();
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.attrs, &q.attrs));
    }

    #[test]
    fn wire_sizes_are_positive_and_ordered() {
        let small = Message::Unsubscribe(SubId::new(1));
        let sub = Message::Subscribe(Subscription::new(SubId::new(1), stock_template("YHOO")));
        assert!(small.wire_size() < sub.wire_size());
        assert!(!small.is_publication());
    }

    #[test]
    fn publication_is_data_plane() {
        let p = Publication::builder(AdvId::new(1), MsgId::new(1)).build();
        assert!(Message::Publication(p).is_publication());
    }
}
