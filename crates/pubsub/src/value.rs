//! Attribute values of the content-based language.
//!
//! PADRES publications carry `[attribute, value]` pairs where values are
//! numbers, strings or booleans. Stock quote publications, the paper's
//! workload, mix all three (`[open,18.37]`, `[symbol,'YHOO']`,
//! `[closeEqualsLow,'true']`).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An attribute value in a publication or predicate.
///
/// Numeric comparisons treat integers and floats uniformly; strings and
/// booleans only support equality-style operators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer, e.g. a trade volume.
    Int(i64),
    /// 64-bit float, e.g. a closing price.
    Float(f64),
    /// Interned string, e.g. a stock symbol.
    Str(Arc<str>),
    /// Boolean flag, e.g. `closeEqualsHigh`.
    Bool(bool),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when both values live in the same comparison domain
    /// (numeric with numeric, string with string, bool with bool).
    pub fn same_domain(&self, other: &Value) -> bool {
        matches!(
            (self, other),
            (
                Value::Int(_) | Value::Float(_),
                Value::Int(_) | Value::Float(_)
            ) | (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
        )
    }

    /// Total comparison across the same domain; `None` across domains.
    ///
    /// Numeric values compare by magnitude (so `Int(1) == Float(1.0)`),
    /// strings lexicographically, booleans with `false < true`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Approximate serialized size in bytes, used for bandwidth
    /// accounting in the simulator.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bool(_) => 1,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp_value(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_crosses_int_and_float() {
        assert_eq!(Value::Int(18), Value::Float(18.0));
        assert_eq!(
            Value::Float(18.37).partial_cmp_value(&Value::Int(19)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cross_domain_comparison_is_none() {
        assert_eq!(Value::str("YHOO").partial_cmp_value(&Value::Int(1)), None);
        assert_ne!(Value::str("1"), Value::Int(1));
        assert_eq!(
            Value::Bool(true).partial_cmp_value(&Value::str("true")),
            None
        );
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::str("GOOG").partial_cmp_value(&Value::str("YHOO")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("YHOO"), Value::str("YHOO"));
    }

    #[test]
    fn display_quotes_strings_like_padres() {
        assert_eq!(Value::str("STOCK").to_string(), "'STOCK'");
        assert_eq!(Value::Float(18.37).to_string(), "18.37");
        // Booleans print bare so the textual form parses back as a
        // boolean (PADRES itself publishes booleans as quoted strings).
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn wire_size_reflects_content() {
        assert_eq!(Value::Int(5).wire_size(), 8);
        assert_eq!(Value::str("YHOO").wire_size(), 4);
        assert_eq!(Value::Bool(false).wire_size(), 1);
    }

    #[test]
    fn same_domain_checks() {
        assert!(Value::Int(1).same_domain(&Value::Float(2.0)));
        assert!(!Value::Int(1).same_domain(&Value::str("x")));
        assert!(Value::Bool(true).same_domain(&Value::Bool(false)));
    }
}
