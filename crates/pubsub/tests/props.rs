//! Property-based tests of the content-based language: covering and
//! overlap soundness against sampled publications, matcher agreement,
//! and parser round-trips.

use greenps_pubsub::filter::Filter;
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_pubsub::matching::{CountingMatcher, Matcher, NaiveMatcher};
use greenps_pubsub::message::Publication;
use greenps_pubsub::parser::parse_filter;
use greenps_pubsub::predicate::{Op, Predicate};
use greenps_pubsub::value::Value;
use proptest::prelude::*;

const ATTRS: [&str; 4] = ["w", "x", "y", "z"];
const SYMBOLS: [&str; 3] = ["AAA", "BBB", "CCC"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        (-20.0f64..20.0).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
        proptest::sample::select(SYMBOLS.to_vec()).prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (
        proptest::sample::select(ATTRS.to_vec()),
        proptest::sample::select(vec![
            Op::Eq,
            Op::Neq,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Present,
        ]),
        arb_value(),
    )
        .prop_map(|(attr, op, value)| Predicate {
            attr: attr.to_string(),
            op,
            value,
        })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(arb_predicate(), 0..4).prop_map(Filter::from_predicates)
}

fn arb_publication() -> impl Strategy<Value = Publication> {
    proptest::collection::vec(
        (proptest::sample::select(ATTRS.to_vec()), arb_value()),
        0..5,
    )
    .prop_map(|attrs| {
        let mut b = Publication::builder(AdvId::new(1), MsgId::new(0));
        for (a, v) in attrs {
            b = b.attr(a, v);
        }
        b.build()
    })
}

proptest! {
    /// Covering soundness: if `a.covers(b)`, every publication matching
    /// `b` matches `a`.
    #[test]
    fn covers_is_sound(
        a in arb_filter(),
        b in arb_filter(),
        pubs in proptest::collection::vec(arb_publication(), 0..40),
    ) {
        if a.covers(&b) {
            for p in &pubs {
                if b.matches(p) {
                    prop_assert!(a.matches(p), "{a} claims to cover {b} but missed {p}");
                }
            }
        }
    }

    /// Overlap soundness: a publication matching both filters implies
    /// `overlaps` returned true (never a false "disjoint").
    #[test]
    fn overlaps_is_sound(
        a in arb_filter(),
        b in arb_filter(),
        pubs in proptest::collection::vec(arb_publication(), 0..40),
    ) {
        if !a.overlaps(&b) {
            for p in &pubs {
                prop_assert!(
                    !(a.matches(p) && b.matches(p)),
                    "{a} and {b} claimed disjoint but {p} matches both"
                );
            }
        }
    }

    /// Predicate-level covering soundness over raw values.
    #[test]
    fn predicate_covers_is_sound(
        a in arb_predicate(),
        b in arb_predicate(),
        values in proptest::collection::vec(arb_value(), 0..40),
    ) {
        if a.covers(&b) {
            for v in &values {
                if b.eval(v) {
                    prop_assert!(a.eval(v), "{a} covers {b} but missed value {v}");
                }
            }
        }
    }

    /// The counting matcher agrees with the naive matcher on arbitrary
    /// workloads, including after removals.
    #[test]
    fn matchers_agree(
        filters in proptest::collection::vec(arb_filter(), 0..25),
        removals in proptest::collection::vec(0usize..25, 0..10),
        pubs in proptest::collection::vec(arb_publication(), 0..25),
    ) {
        let mut naive = NaiveMatcher::new();
        let mut counting = CountingMatcher::new();
        for (i, f) in filters.iter().enumerate() {
            naive.insert(SubId::new(i as u64), f.clone());
            counting.insert(SubId::new(i as u64), f.clone());
        }
        for r in removals {
            naive.remove(SubId::new(r as u64));
            counting.remove(SubId::new(r as u64));
        }
        prop_assert_eq!(naive.len(), counting.len());
        for p in &pubs {
            prop_assert_eq!(naive.matches(p), counting.matches(p), "on {}", p);
        }
    }

    /// Any filter survives a display → parse round trip.
    #[test]
    fn parser_round_trips(filter in arb_filter()) {
        if filter.is_empty() {
            return Ok(()); // empty filters have no textual form
        }
        let text = filter.to_string();
        let parsed = parse_filter(&text).unwrap();
        prop_assert_eq!(&parsed, &filter, "text: {}", text);
    }

    /// Canonical keys are equal exactly for permutation-equal filters.
    #[test]
    fn canonical_key_is_permutation_invariant(
        preds in proptest::collection::vec(arb_predicate(), 1..4),
        seed in 0usize..24,
    ) {
        let f1 = Filter::from_predicates(preds.clone());
        let mut rotated = preds.clone();
        rotated.rotate_left(seed % preds.len());
        let f2 = Filter::from_predicates(rotated);
        prop_assert_eq!(f1.canonical_key(), f2.canonical_key());
    }
}
