//! Benchmarks of the four closeness metrics over realistic profiles
//! (the hot loop of CRAM's partner search).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenps_bench::ideal_input;
use greenps_profile::ClosenessMetric;
use greenps_workload::homogeneous;

fn bench_metrics(c: &mut Criterion) {
    let mut scenario = homogeneous(400, 11);
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let profiles: Vec<_> = input.subscriptions.iter().map(|s| &s.profile).collect();
    let mut group = c.benchmark_group("closeness/pairwise");
    for metric in ClosenessMetric::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(metric),
            &metric,
            |b, &metric| {
                let mut i = 0usize;
                b.iter(|| {
                    let a = profiles[i % profiles.len()];
                    let z = profiles[(i * 31 + 7) % profiles.len()];
                    i += 1;
                    black_box(metric.closeness(a, z))
                });
            },
        );
    }
    group.finish();
}

fn bench_relationship(c: &mut Criterion) {
    let mut scenario = homogeneous(400, 12);
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let profiles: Vec<_> = input.subscriptions.iter().map(|s| &s.profile).collect();
    c.bench_function("closeness/relationship", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = profiles[i % profiles.len()];
            let z = profiles[(i * 17 + 3) % profiles.len()];
            i += 1;
            black_box(a.relationship(z))
        });
    });
}

criterion_group!(benches, bench_metrics, bench_relationship);
criterion_main!(benches);
