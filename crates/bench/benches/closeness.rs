//! Benchmarks of the four closeness metrics over realistic profiles
//! (the hot loop of CRAM's partner search), plus the shared
//! `pair_cardinalities` popcount kernel that all four route through.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenps_bench::ideal_input;
use greenps_profile::ClosenessMetric;
use greenps_workload::{Scenario, ScenarioBuilder, Topology};

fn homogeneous_scenario(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

fn bench_metrics(c: &mut Criterion) {
    let mut scenario = homogeneous_scenario(400, 11);
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let profiles: Vec<_> = input.subscriptions.iter().map(|s| &s.profile).collect();
    let mut group = c.benchmark_group("closeness/pairwise");
    for metric in ClosenessMetric::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(metric),
            &metric,
            |b, &metric| {
                let mut i = 0usize;
                b.iter(|| {
                    let a = profiles[i % profiles.len()];
                    let z = profiles[(i * 31 + 7) % profiles.len()];
                    i += 1;
                    black_box(metric.closeness(a, z))
                });
            },
        );
    }
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut scenario = homogeneous_scenario(400, 11);
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let profiles: Vec<_> = input.subscriptions.iter().map(|s| &s.profile).collect();
    // One batch popcount pass yields all four cardinalities; compare
    // against four separate metric evaluations of the same pair.
    let mut group = c.benchmark_group("closeness/kernel");
    group.bench_function("pair_cardinalities", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = profiles[i % profiles.len()];
            let z = profiles[(i * 31 + 7) % profiles.len()];
            i += 1;
            black_box(a.pair_cardinalities(z))
        });
    });
    group.bench_function("all_metrics_from_kernel", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = profiles[i % profiles.len()];
            let z = profiles[(i * 31 + 7) % profiles.len()];
            i += 1;
            let total: f64 = ClosenessMetric::ALL.iter().map(|m| m.closeness(a, z)).sum();
            black_box(total)
        });
    });
    group.finish();
}

fn bench_relationship(c: &mut Criterion) {
    let mut scenario = homogeneous_scenario(400, 12);
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let profiles: Vec<_> = input.subscriptions.iter().map(|s| &s.profile).collect();
    c.bench_function("closeness/relationship", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = profiles[i % profiles.len()];
            let z = profiles[(i * 17 + 3) % profiles.len()];
            i += 1;
            black_box(a.relationship(z))
        });
    });
}

criterion_group!(benches, bench_metrics, bench_kernel, bench_relationship);
criterion_main!(benches);
