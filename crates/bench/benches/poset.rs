//! Poset insertion/removal benchmarks (the paper reports 3,200 GIF
//! inserts in about 2 s on 2011 hardware).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenps_bench::ideal_input;
use greenps_profile::{Poset, SubscriptionProfile};
use greenps_workload::{ScenarioBuilder, Topology};
use std::collections::BTreeSet;

fn unique_profiles(subs: usize) -> Vec<SubscriptionProfile> {
    let mut scenario = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(subs)
        .seed(13)
        .build();
    scenario.brokers.truncate(8);
    let input = ideal_input(&scenario);
    let set: BTreeSet<SubscriptionProfile> =
        input.subscriptions.into_iter().map(|s| s.profile).collect();
    set.into_iter().collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("poset/build");
    group.sample_size(10);
    for subs in [400usize, 800, 1600] {
        let profiles = unique_profiles(subs);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}gifs", profiles.len())),
            &profiles,
            |b, profiles| {
                b.iter(|| {
                    let mut poset: Poset<usize> = Poset::new();
                    for (i, p) in profiles.iter().enumerate() {
                        poset.insert(i, p.clone());
                    }
                    black_box(poset.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_remove(c: &mut Criterion) {
    let profiles = unique_profiles(800);
    c.bench_function("poset/remove_reinsert", |b| {
        let mut poset: Poset<usize> = Poset::new();
        for (i, p) in profiles.iter().enumerate() {
            poset.insert(i, p.clone());
        }
        let mut i = 0usize;
        b.iter(|| {
            let k = i % profiles.len();
            let p = poset.remove(k).expect("present");
            poset.insert(k, p);
            i += 1;
        });
    });
}

criterion_group!(benches, bench_insert, bench_remove);
criterion_main!(benches);
