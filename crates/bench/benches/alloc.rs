//! End-to-end allocation algorithm benchmarks: FBF vs BIN PACKING vs
//! CRAM (per metric) at increasing subscription counts — the data
//! behind experiment E7.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenps_bench::ideal_input;
use greenps_core::cram::CramBuilder;
use greenps_core::model::AllocationInput;
use greenps_core::sorting::{bin_packing, fbf};
use greenps_profile::ClosenessMetric;
use greenps_workload::{ScenarioBuilder, Topology};

fn homogeneous_input(total_subs: usize, seed: u64) -> AllocationInput {
    ideal_input(
        &ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(total_subs)
            .seed(seed)
            .build(),
    )
}

fn inputs() -> Vec<(usize, AllocationInput)> {
    [500usize, 1000]
        .iter()
        .map(|&n| (n, homogeneous_input(n, 14)))
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let inputs = inputs();
    let mut group = c.benchmark_group("alloc/sorting");
    group.sample_size(10);
    for (n, input) in &inputs {
        group.bench_with_input(BenchmarkId::new("fbf", n), input, |b, input| {
            b.iter(|| black_box(fbf(input, 1).unwrap().broker_count()));
        });
        group.bench_with_input(BenchmarkId::new("binpacking", n), input, |b, input| {
            b.iter(|| black_box(bin_packing(input).unwrap().broker_count()));
        });
    }
    group.finish();
}

fn bench_cram(c: &mut Criterion) {
    let input = homogeneous_input(500, 15);
    let mut group = c.benchmark_group("alloc/cram");
    group.sample_size(10);
    for metric in [ClosenessMetric::Ios, ClosenessMetric::Xor] {
        group.bench_with_input(
            BenchmarkId::from_parameter(metric),
            &metric,
            |b, &metric| {
                b.iter(|| {
                    let (alloc, _) = CramBuilder::new(metric).run(&input).unwrap();
                    black_box(alloc.broker_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sorting, bench_cram);
criterion_main!(benches);
