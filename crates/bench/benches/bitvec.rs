//! Micro-benchmarks for the shifting bit vector — the innermost data
//! structure of the resource-allocation framework.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use greenps_profile::ShiftingBitVector;

fn filled(cap: usize, stride: u64) -> ShiftingBitVector {
    let mut v = ShiftingBitVector::new(cap);
    let mut id = 0;
    while id < cap as u64 {
        v.record(id);
        id += stride;
    }
    v
}

fn bench_record(c: &mut Criterion) {
    c.bench_function("bitvec/record_in_window", |b| {
        let mut v = ShiftingBitVector::new(1280);
        let mut id = 0u64;
        b.iter(|| {
            v.record(black_box(id % 1280));
            id += 7;
        });
    });
    c.bench_function("bitvec/record_with_shift", |b| {
        let mut v = ShiftingBitVector::new(1280);
        let mut id = 0u64;
        b.iter(|| {
            // Every record lands past the window end → shift each time.
            id += 1281;
            v.record(black_box(id));
        });
    });
}

// The deprecated single-op counts are benchmarked on purpose: they are
// the baseline the fused `pair_cardinalities` kernel is judged against.
#[allow(deprecated)]
fn bench_set_ops(c: &mut Criterion) {
    let a = filled(1280, 2);
    let b_aligned = filled(1280, 3);
    let mut b_shifted = ShiftingBitVector::starting_at(1280, 640);
    for id in (640..1920).step_by(3) {
        b_shifted.record(id);
    }
    c.bench_function("bitvec/and_count_aligned", |bench| {
        bench.iter(|| black_box(a.and_count(&b_aligned)));
    });
    c.bench_function("bitvec/and_count_misaligned", |bench| {
        bench.iter(|| black_box(a.and_count(&b_shifted)));
    });
    c.bench_function("bitvec/or_assign", |bench| {
        bench.iter(|| {
            let mut x = a.clone();
            x.or_assign(&b_aligned);
            black_box(x.count_ones())
        });
    });
    c.bench_function("bitvec/xor_count", |bench| {
        bench.iter(|| black_box(a.xor_count(&b_aligned)));
    });
}

criterion_group!(benches, bench_record, bench_set_ops);
criterion_main!(benches);
