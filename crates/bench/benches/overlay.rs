//! Phase-3 benchmarks: recursive overlay construction and GRAPE
//! publisher placement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use greenps_bench::ideal_input;
use greenps_core::cram::{CramBuilder, CramConfig};
use greenps_core::grape::{place_publishers, GrapeConfig, InterestTree};
use greenps_core::overlay::{build_overlay, AllocatorKind, OverlayConfig};
use greenps_profile::ClosenessMetric;
use greenps_workload::{ScenarioBuilder, Topology};

fn homogeneous_scenario(total_subs: usize, seed: u64) -> greenps_workload::Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

fn bench_overlay(c: &mut Criterion) {
    let input = ideal_input(&homogeneous_scenario(1000, 18));
    let (leaf, _) = CramBuilder::new(ClosenessMetric::Ios)
        .run(&input)
        .expect("leaf alloc");
    let mut group = c.benchmark_group("overlay");
    group.sample_size(10);
    group.bench_function("build_binpacking", |b| {
        let cfg = OverlayConfig::new(AllocatorKind::BinPacking);
        b.iter(|| black_box(build_overlay(&input, &leaf, &cfg).unwrap().broker_count()));
    });
    group.bench_function("build_cram", |b| {
        let cfg = OverlayConfig::new(AllocatorKind::Cram(CramConfig::with_metric(
            ClosenessMetric::Ios,
        )));
        b.iter(|| black_box(build_overlay(&input, &leaf, &cfg).unwrap().broker_count()));
    });
    group.finish();
}

fn bench_grape(c: &mut Criterion) {
    let input = ideal_input(&homogeneous_scenario(1000, 19));
    let (leaf, _) = CramBuilder::new(ClosenessMetric::Ios)
        .run(&input)
        .expect("leaf alloc");
    let overlay = build_overlay(
        &input,
        &leaf,
        &OverlayConfig::new(AllocatorKind::BinPacking),
    )
    .expect("overlay");
    let tree = InterestTree::from_overlay(&overlay);
    c.bench_function("grape/place_all_publishers", |b| {
        b.iter(|| {
            black_box(
                place_publishers(&tree, &input.publishers, GrapeConfig::minimize_load()).len(),
            )
        });
    });
}

criterion_group!(benches, bench_overlay, bench_grape);
criterion_main!(benches);
