//! Matching-engine benchmarks: publication match cost vs subscription
//! table size — the empirical basis of the linear matching-delay model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_pubsub::matching::{CountingMatcher, Matcher, NaiveMatcher};
use greenps_workload::{Scenario, ScenarioBuilder, StockSeries, Topology};

fn homogeneous_scenario(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

fn bench_matchers(c: &mut Criterion) {
    let scenario = homogeneous_scenario(4000, 16);
    let stock: &StockSeries = &scenario.stocks[0];
    let publication = stock.publication(AdvId::new(1), MsgId::new(17));

    let mut group = c.benchmark_group("matching/per_publication");
    for &n in &[500usize, 2000, 4000] {
        let mut counting = CountingMatcher::new();
        let mut naive = NaiveMatcher::new();
        for sub in scenario.subs.iter().take(n) {
            counting.insert(sub.id, sub.filter.clone());
            naive.insert(sub.id, sub.filter.clone());
        }
        group.bench_with_input(BenchmarkId::new("counting", n), &counting, |b, m| {
            b.iter(|| black_box(m.matches(&publication).len()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &naive, |b, m| {
            b.iter(|| black_box(m.matches(&publication).len()))
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let scenario = homogeneous_scenario(2000, 17);
    c.bench_function("matching/insert_remove", |b| {
        let mut m = CountingMatcher::new();
        for sub in &scenario.subs {
            m.insert(sub.id, sub.filter.clone());
        }
        let mut i = 0u64;
        b.iter(|| {
            let id = SubId::new(i % 2000);
            let f = scenario.subs[(i % 2000) as usize].filter.clone();
            m.remove(id);
            m.insert(id, f);
            i += 1;
        });
    });
}

criterion_group!(benches, bench_matchers, bench_insert_remove);
criterion_main!(benches);
