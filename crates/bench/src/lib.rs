//! # greenps-bench
//!
//! Shared input builders for the criterion micro-benchmarks and the
//! `experiments` binary that regenerates every figure/table of the
//! paper (see DESIGN.md §4 for the experiment index E1–E10).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use greenps_core::cram::CramBuilder;
use greenps_core::model::{AllocationInput, SubscriptionEntry};
use greenps_profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_workload::scenario::Scenario;
use greenps_workload::{ScenarioBuilder, Topology};
use std::time::Instant;

/// Number of publications per publisher used to fill synthetic
/// profiles.
pub const PROFILE_WINDOW: u64 = 400;

/// Peak resident set size of this process in KiB, read from the
/// `VmHWM` line of `/proc/self/status`. `None` on non-Linux targets
/// (reports render it as JSON `null`) so `BENCH_cram.json` and
/// `BENCH_scale.json` share one memory column everywhere.
pub fn peak_rss_kib() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status.lines().find_map(|line| {
            line.strip_prefix("VmHWM:")?
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()
        })
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Renders [`peak_rss_kib`] as a JSON scalar (`null` off-Linux).
fn peak_rss_json() -> String {
    match peak_rss_kib() {
        Some(kib) => kib.to_string(),
        None => "null".to_string(),
    }
}

/// Builds an [`AllocationInput`] directly from a scenario by evaluating
/// every subscription filter against the stocks' publication streams —
/// "ideal" Phase-1 profiles without running the simulator. Used by the
/// algorithm-only experiments (E7–E9) and the criterion benches.
pub fn ideal_input(scenario: &Scenario) -> AllocationInput {
    let mut input = AllocationInput::new();
    for cfg in &scenario.brokers {
        input.brokers.push(greenps_core::model::BrokerSpec::new(
            cfg.id,
            cfg.url.clone(),
            cfg.matching_delay,
            cfg.out_bandwidth,
        ));
    }
    let rate = 1e6 / scenario.publish_period.as_micros() as f64;
    let mut publishers = PublisherTable::new();
    let mut streams: Vec<Vec<greenps_pubsub::Publication>> = Vec::new();
    for (i, stock) in scenario.stocks.iter().enumerate() {
        let adv = AdvId::new(i as u64 + 1);
        let pubs: Vec<greenps_pubsub::Publication> = (0..PROFILE_WINDOW)
            .map(|m| stock.publication(adv, MsgId::new(m)))
            .collect();
        let mean_size =
            pubs.iter().map(|p| p.wire_size()).sum::<usize>() as f64 / pubs.len() as f64;
        publishers.insert(PublisherProfile::new(
            adv,
            rate,
            rate * mean_size,
            MsgId::new(PROFILE_WINDOW - 1),
        ));
        streams.push(pubs);
    }
    input.publishers = publishers;

    for sub in &scenario.subs {
        let mut profile = SubscriptionProfile::new();
        let stream = &streams[sub.publisher_index];
        for p in stream {
            if sub.filter.matches(p) {
                profile.record(p.adv_id, p.msg_id);
            }
        }
        input
            .subscriptions
            .push(SubscriptionEntry::new(sub.id, sub.filter.clone(), profile));
    }
    input
}

/// A small sanity check used by benches: every subscription id is
/// unique and profiles are non-trivially filled.
pub fn check_input(input: &AllocationInput) {
    let mut seen = std::collections::BTreeSet::new();
    for s in &input.subscriptions {
        assert!(seen.insert(s.id), "duplicate sub id {:?}", s.id);
    }
    let filled = input
        .subscriptions
        .iter()
        .filter(|s| s.profile.count_ones() > 0)
        .count();
    assert!(
        filled * 2 >= input.subscriptions.len(),
        "most profiles should record publications ({filled}/{})",
        input.subscriptions.len()
    );
    let _ = SubId::new(0);
}

/// Runs the reference closeness engine (per-profile layout, no tiling,
/// one thread — the bit-exact baseline) against the tuned engine
/// (contiguous arena layout, tiled pair evaluation, `threads` workers)
/// for CRAM-INTERSECT at each subscription count and renders the
/// `BENCH_cram.json` report body. The key vocabulary of the emitted
/// JSON is declared as `benchkey` entries in
/// `analysis/telemetry-schema.txt` and checked by
/// `tests/experiments_smoke.rs` — keep the three in sync.
///
/// `sequential_ms` times the reference engine; `parallel_ms` times the
/// tuned one. `effective_threads` reports how many workers the tuned
/// run could actually use on this machine (`available_parallelism`
/// caps the request — a single-core box runs the tuned engine's layout
/// and tiling wins, but no thread-level ones).
///
/// # Panics
/// Panics when CRAM fails on a generated scenario or the tuned run is
/// not bit-identical to the reference (allocation and every stat except
/// `closeness_computations`, which tiling may only lower).
pub fn bench_report_json(sizes: &[usize], threads: usize, quick: bool) -> String {
    use greenps_core::cram::{Layout, DEFAULT_TILE};
    let available = greenps_core::engine::available_threads();
    let effective_threads = threads.max(1).min(available);
    let mut runs = Vec::new();
    for &n in sizes {
        // Larger clusters keep the bin-packing feasibility baseline
        // satisfiable at 16k subscriptions.
        let scenario = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(n)
            .brokers((n / 50).max(80))
            .seed(9)
            .build();
        let input = ideal_input(&scenario);
        let t0 = Instant::now();
        let (ref_alloc, ref_stats) = CramBuilder::new(ClosenessMetric::Intersect)
            .layout(Layout::PerProfile)
            .tile(0)
            .run(&input)
            .expect("reference CRAM");
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let (tuned_alloc, tuned_stats) = CramBuilder::new(ClosenessMetric::Intersect)
            .layout(Layout::Arena { stride: 0 })
            .tile(DEFAULT_TILE)
            .threads(threads)
            .run(&input)
            .expect("tuned CRAM");
        let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            ref_alloc, tuned_alloc,
            "tuned CRAM must produce a bit-identical allocation"
        );
        assert!(
            tuned_stats.closeness_computations <= ref_stats.closeness_computations,
            "tiling may only lower closeness computations: {} vs {}",
            tuned_stats.closeness_computations,
            ref_stats.closeness_computations
        );
        let mut normalized = tuned_stats;
        normalized.closeness_computations = ref_stats.closeness_computations;
        assert_eq!(
            normalized, ref_stats,
            "tuned CRAM stats must match outside tile pruning"
        );
        let speedup = sequential_ms / parallel_ms.max(1e-9);
        let reduction = 100.0
            * (ref_stats.closeness_computations - tuned_stats.closeness_computations) as f64
            / (ref_stats.closeness_computations as f64).max(1.0);
        println!(
            "bench-report: {n} subs / {} brokers -> reference {sequential_ms:.1} ms, \
             tuned(arena, tile {DEFAULT_TILE}, x{effective_threads}) {parallel_ms:.1} ms \
             ({speedup:.2}x, {reduction:.1}% fewer closeness computations), identical allocation",
            scenario.brokers.len()
        );
        runs.push(format!(
            "    {{\"subscriptions\": {n}, \"brokers\": {}, \"threads\": {threads}, \
             \"effective_threads\": {effective_threads}, \"layout\": \"arena\", \
             \"tile\": {DEFAULT_TILE}, \"sequential_ms\": {sequential_ms:.3}, \
             \"parallel_ms\": {parallel_ms:.3}, \"speedup\": {speedup:.3}, \
             \"allocated_brokers\": {}, \"merges\": {}, \
             \"closeness_computations\": {}, \"reference_computations\": {}, \
             \"reduction\": {reduction:.3}, \"peak_rss_kib\": {}, \"identical\": true}}",
            scenario.brokers.len(),
            ref_alloc.broker_count(),
            ref_stats.merges,
            tuned_stats.closeness_computations,
            ref_stats.closeness_computations,
            peak_rss_json(),
        ));
    }
    format!(
        "{{\n  \"metric\": \"INTERSECT\",\n  \"quick\": {},\n  \
         \"available_parallelism\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        available,
        runs.join(",\n")
    )
}

/// Publishers per zone used by the scale report's zoned workloads.
pub const SCALE_PUBS_PER_ZONE: usize = 8;

/// Seed of the scale-report workloads.
pub const SCALE_SEED: u64 = 11;

/// Runs the hierarchical zoned allocator ([`greenps_core::zones`]) over
/// streaming zoned workloads — one `(subscriptions, zones)` row each —
/// and renders the `BENCH_scale.json` report body. Zones are generated
/// and profiled on demand by [`greenps_workload::zones::ZonedStreamFeed`],
/// so peak RSS tracks the largest zone rather than the whole workload;
/// every row records it via [`peak_rss_kib`] (note `VmHWM` is a
/// high-water mark, so rows share the process-lifetime peak so far).
///
/// The key vocabulary of the emitted JSON is declared as `benchkey`
/// entries in `analysis/telemetry-schema.txt` and checked by
/// `tests/experiments_smoke.rs` — keep the three in sync.
///
/// # Panics
/// Panics when the zoned allocator fails on a generated workload or a
/// row drops subscriptions.
pub fn scale_report_json(rows: &[(usize, usize)], zone_threads: usize, quick: bool) -> String {
    use greenps_core::zones::{zoned_allocate, ZonedConfig};
    use greenps_telemetry::Registry;
    use greenps_workload::zones::{ZonedSpec, ZonedStreamFeed};

    let available = greenps_core::engine::available_threads();
    let effective_threads = zone_threads.max(1).min(available);
    let mut rendered = Vec::new();
    for &(subs, zones) in rows {
        let spec = ZonedSpec {
            zones: zones.max(1),
            skew: 1,
            total_subs: subs,
            pubs_per_zone: SCALE_PUBS_PER_ZONE,
            seed: SCALE_SEED,
        };
        let largest_zone = spec.zone_sub_counts().into_iter().max().unwrap_or(0);
        let mut feed = ZonedStreamFeed::new(spec, PROFILE_WINDOW);
        let brokers = feed.broker_pool((subs / 50).max(80));
        let publishers = feed.publishers().clone();
        let registry = Registry::new();
        let config =
            ZonedConfig::with_metric(ClosenessMetric::Intersect).zone_threads(zone_threads);
        let t0 = Instant::now();
        let zoned = zoned_allocate(&mut feed, &brokers, &publishers, &config, &registry)
            .expect("zoned CRAM");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            zoned.sub_count(),
            subs,
            "every subscription must be allocated"
        );
        let rss = peak_rss_json();
        println!(
            "scale-report: {subs} subs / {zones} zones (largest {largest_zone}) -> \
             {} brokers in {wall_ms:.0} ms, {} cross-zone links, peak RSS {rss} KiB",
            zoned.allocation.broker_count(),
            zoned.cross_links,
        );
        rendered.push(format!(
            "    {{\"subscriptions\": {subs}, \"zones\": {}, \"brokers\": {}, \
             \"threads\": {zone_threads}, \"effective_threads\": {effective_threads}, \
             \"largest_zone\": {largest_zone}, \"gifs\": {}, \
             \"allocated_brokers\": {}, \"cross_links\": {}, \
             \"wall_ms\": {wall_ms:.3}, \"peak_rss_kib\": {rss}}}",
            zoned.zone_count(),
            brokers.len(),
            zoned.zones.iter().map(|z| z.gifs).sum::<usize>(),
            zoned.allocation.broker_count(),
            zoned.cross_links,
        ));
    }
    format!(
        "{{\n  \"metric\": \"INTERSECT\",\n  \"quick\": {},\n  \
         \"available_parallelism\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        available,
        rendered.join(",\n")
    )
}

/// Deploys a stock-chain overlay as real loopback TCP processes — one
/// `(brokers, publications-per-publisher)` row each — over
/// [`greenps_net::TcpTransport`], measures throughput and per-broker
/// delivery latency, and renders the `BENCH_transport.json` report
/// body. Transport counters (`transport.*`) come straight out of the
/// telemetry registry the transport records into; per-broker latency
/// samples are additionally folded into the declared
/// `broker.b<id>.delivery_delay_us` histograms so a `--telemetry`
/// export sees the same numbers as the report.
///
/// The key vocabulary of the emitted JSON is declared as `benchkey`
/// entries in `analysis/telemetry-schema.txt` and checked by
/// `tests/experiments_smoke.rs` — keep the three in sync.
///
/// # Panics
/// Panics when the loopback deployment cannot bind, connect, or
/// complete a run.
pub fn transport_report_json(rows: &[(usize, u64)], quick: bool) -> String {
    use greenps_broker::{NetDeployment, NetScenario};
    use greenps_core::pipeline::CancelToken;
    use greenps_net::TcpTransport;
    use greenps_telemetry::Registry;

    let mut rendered = Vec::new();
    for &(brokers, publications) in rows {
        let registry = Registry::new();
        let scenario = NetScenario::stock_chain(brokers, publications);
        let mut transport = TcpTransport::with_telemetry(&registry);
        let deployment =
            NetDeployment::build(&mut transport, &scenario).expect("build tcp overlay");
        let report = deployment
            .run(&CancelToken::never())
            .expect("run tcp overlay");
        for (b, lat) in &report.latency_us_by_broker {
            let hist = registry.histogram(&format!("broker.b{}.delivery_delay_us", b.raw()));
            for &us in lat {
                hist.record(us);
            }
        }
        let snap = registry.snapshot();
        let wire = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let delivered = report.total_delivered();
        let elapsed_ms = report.elapsed.as_secs_f64() * 1e3;
        let msgs_per_sec = report.delivered_per_sec();
        let mean_hops = match report.mean_hops {
            Some(h) => format!("{h:.3}"),
            None => "null".to_string(),
        };
        let mut latency_rows = Vec::new();
        for (b, lat) in &report.latency_us_by_broker {
            let mut sorted = lat.clone();
            sorted.sort_unstable();
            let samples = sorted.len();
            let mean_us = sorted.iter().sum::<u64>() as f64 / samples.max(1) as f64;
            let p99_us = sorted
                .get(((samples.saturating_sub(1)) * 99) / 100)
                .copied()
                .unwrap_or(0);
            latency_rows.push(format!(
                "{{\"broker\": {}, \"samples\": {samples}, \
                 \"mean_us\": {mean_us:.1}, \"p99_us\": {p99_us}}}",
                b.raw()
            ));
        }
        println!(
            "transport-report: {brokers} brokers x {publications} pubs over tcp-loopback -> \
             {delivered} delivered in {elapsed_ms:.0} ms ({msgs_per_sec:.0} msgs/s, \
             {} frames on the wire)",
            wire("transport.frames_sent"),
        );
        rendered.push(format!(
            "    {{\"brokers\": {brokers}, \"publications\": {publications}, \
             \"published\": {}, \"delivered\": {delivered}, \
             \"msgs_per_sec\": {msgs_per_sec:.3}, \"elapsed_ms\": {elapsed_ms:.3}, \
             \"send_errors\": {}, \"mean_hops\": {mean_hops}, \
             \"frames_sent\": {}, \"frames_received\": {}, \
             \"bytes_sent\": {}, \"bytes_received\": {}, \
             \"latency\": [{}]}}",
            report.published,
            report.send_errors,
            wire("transport.frames_sent"),
            wire("transport.frames_received"),
            wire("transport.bytes_sent"),
            wire("transport.bytes_received"),
            latency_rows.join(", "),
        ));
    }
    format!(
        "{{\n  \"backend\": \"tcp-loopback\",\n  \"quick\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        rendered.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_input_profiles_match_selectivity() {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(200)
            .seed(3)
            .build();
        s.brokers.truncate(10);
        let input = ideal_input(&s);
        check_input(&input);
        assert_eq!(input.subscriptions.len(), 200);
        assert_eq!(input.brokers.len(), 10);
        assert_eq!(input.publishers.len(), 40);
        // Template subscriptions (2 predicates) sink the whole window.
        for e in &input.subscriptions {
            if e.filter.len() == 2 {
                assert_eq!(e.profile.count_ones() as u64, PROFILE_WINDOW);
            } else {
                assert!(e.profile.count_ones() as u64 <= PROFILE_WINDOW);
            }
        }
        // ~70 msg/min
        let p = input.publishers.iter().next().unwrap();
        assert!((p.rate - 70.0 / 60.0).abs() < 0.01);
    }
}
