//! # greenps-bench
//!
//! Shared input builders for the criterion micro-benchmarks and the
//! `experiments` binary that regenerates every figure/table of the
//! paper (see DESIGN.md §4 for the experiment index E1–E10).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use greenps_core::model::{AllocationInput, SubscriptionEntry};
use greenps_profile::{PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_workload::scenario::Scenario;

/// Number of publications per publisher used to fill synthetic
/// profiles.
pub const PROFILE_WINDOW: u64 = 400;

/// Builds an [`AllocationInput`] directly from a scenario by evaluating
/// every subscription filter against the stocks' publication streams —
/// "ideal" Phase-1 profiles without running the simulator. Used by the
/// algorithm-only experiments (E7–E9) and the criterion benches.
pub fn ideal_input(scenario: &Scenario) -> AllocationInput {
    let mut input = AllocationInput::new();
    for cfg in &scenario.brokers {
        input.brokers.push(greenps_core::model::BrokerSpec::new(
            cfg.id,
            cfg.url.clone(),
            cfg.matching_delay,
            cfg.out_bandwidth,
        ));
    }
    let rate = 1e6 / scenario.publish_period.as_micros() as f64;
    let mut publishers = PublisherTable::new();
    let mut streams: Vec<Vec<greenps_pubsub::Publication>> = Vec::new();
    for (i, stock) in scenario.stocks.iter().enumerate() {
        let adv = AdvId::new(i as u64 + 1);
        let pubs: Vec<greenps_pubsub::Publication> = (0..PROFILE_WINDOW)
            .map(|m| stock.publication(adv, MsgId::new(m)))
            .collect();
        let mean_size =
            pubs.iter().map(|p| p.wire_size()).sum::<usize>() as f64 / pubs.len() as f64;
        publishers.insert(PublisherProfile::new(
            adv,
            rate,
            rate * mean_size,
            MsgId::new(PROFILE_WINDOW - 1),
        ));
        streams.push(pubs);
    }
    input.publishers = publishers;

    for sub in &scenario.subs {
        let mut profile = SubscriptionProfile::new();
        let stream = &streams[sub.publisher_index];
        for p in stream {
            if sub.filter.matches(p) {
                profile.record(p.adv_id, p.msg_id);
            }
        }
        input
            .subscriptions
            .push(SubscriptionEntry::new(sub.id, sub.filter.clone(), profile));
    }
    input
}

/// A small sanity check used by benches: every subscription id is
/// unique and profiles are non-trivially filled.
pub fn check_input(input: &AllocationInput) {
    let mut seen = std::collections::BTreeSet::new();
    for s in &input.subscriptions {
        assert!(seen.insert(s.id), "duplicate sub id {:?}", s.id);
    }
    let filled = input
        .subscriptions
        .iter()
        .filter(|s| s.profile.count_ones() > 0)
        .count();
    assert!(
        filled * 2 >= input.subscriptions.len(),
        "most profiles should record publications ({filled}/{})",
        input.subscriptions.len()
    );
    let _ = SubId::new(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_workload::{ScenarioBuilder, Topology};

    #[test]
    fn ideal_input_profiles_match_selectivity() {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(200)
            .seed(3)
            .build();
        s.brokers.truncate(10);
        let input = ideal_input(&s);
        check_input(&input);
        assert_eq!(input.subscriptions.len(), 200);
        assert_eq!(input.brokers.len(), 10);
        assert_eq!(input.publishers.len(), 40);
        // Template subscriptions (2 predicates) sink the whole window.
        for e in &input.subscriptions {
            if e.filter.len() == 2 {
                assert_eq!(e.profile.count_ones() as u64, PROFILE_WINDOW);
            } else {
                assert!(e.profile.count_ones() as u64 <= PROFILE_WINDOW);
            }
        }
        // ~70 msg/min
        let p = input.publishers.iter().next().unwrap();
        assert!((p.rate - 70.0 / 60.0).abs() < 0.01);
    }
}
