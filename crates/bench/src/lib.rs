//! # greenps-bench
//!
//! Shared input builders for the criterion micro-benchmarks and the
//! `experiments` binary that regenerates every figure/table of the
//! paper (see DESIGN.md §4 for the experiment index E1–E10).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use greenps_core::cram::CramBuilder;
use greenps_core::model::{AllocationInput, SubscriptionEntry};
use greenps_profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_workload::scenario::Scenario;
use greenps_workload::{ScenarioBuilder, Topology};
use std::time::Instant;

/// Number of publications per publisher used to fill synthetic
/// profiles.
pub const PROFILE_WINDOW: u64 = 400;

/// Builds an [`AllocationInput`] directly from a scenario by evaluating
/// every subscription filter against the stocks' publication streams —
/// "ideal" Phase-1 profiles without running the simulator. Used by the
/// algorithm-only experiments (E7–E9) and the criterion benches.
pub fn ideal_input(scenario: &Scenario) -> AllocationInput {
    let mut input = AllocationInput::new();
    for cfg in &scenario.brokers {
        input.brokers.push(greenps_core::model::BrokerSpec::new(
            cfg.id,
            cfg.url.clone(),
            cfg.matching_delay,
            cfg.out_bandwidth,
        ));
    }
    let rate = 1e6 / scenario.publish_period.as_micros() as f64;
    let mut publishers = PublisherTable::new();
    let mut streams: Vec<Vec<greenps_pubsub::Publication>> = Vec::new();
    for (i, stock) in scenario.stocks.iter().enumerate() {
        let adv = AdvId::new(i as u64 + 1);
        let pubs: Vec<greenps_pubsub::Publication> = (0..PROFILE_WINDOW)
            .map(|m| stock.publication(adv, MsgId::new(m)))
            .collect();
        let mean_size =
            pubs.iter().map(|p| p.wire_size()).sum::<usize>() as f64 / pubs.len() as f64;
        publishers.insert(PublisherProfile::new(
            adv,
            rate,
            rate * mean_size,
            MsgId::new(PROFILE_WINDOW - 1),
        ));
        streams.push(pubs);
    }
    input.publishers = publishers;

    for sub in &scenario.subs {
        let mut profile = SubscriptionProfile::new();
        let stream = &streams[sub.publisher_index];
        for p in stream {
            if sub.filter.matches(p) {
                profile.record(p.adv_id, p.msg_id);
            }
        }
        input
            .subscriptions
            .push(SubscriptionEntry::new(sub.id, sub.filter.clone(), profile));
    }
    input
}

/// A small sanity check used by benches: every subscription id is
/// unique and profiles are non-trivially filled.
pub fn check_input(input: &AllocationInput) {
    let mut seen = std::collections::BTreeSet::new();
    for s in &input.subscriptions {
        assert!(seen.insert(s.id), "duplicate sub id {:?}", s.id);
    }
    let filled = input
        .subscriptions
        .iter()
        .filter(|s| s.profile.count_ones() > 0)
        .count();
    assert!(
        filled * 2 >= input.subscriptions.len(),
        "most profiles should record publications ({filled}/{})",
        input.subscriptions.len()
    );
    let _ = SubId::new(0);
}

/// Runs the reference closeness engine (per-profile layout, no tiling,
/// one thread — the bit-exact baseline) against the tuned engine
/// (contiguous arena layout, tiled pair evaluation, `threads` workers)
/// for CRAM-INTERSECT at each subscription count and renders the
/// `BENCH_cram.json` report body. The key vocabulary of the emitted
/// JSON is declared as `benchkey` entries in
/// `analysis/telemetry-schema.txt` and checked by
/// `tests/experiments_smoke.rs` — keep the three in sync.
///
/// `sequential_ms` times the reference engine; `parallel_ms` times the
/// tuned one. `effective_threads` reports how many workers the tuned
/// run could actually use on this machine (`available_parallelism`
/// caps the request — a single-core box runs the tuned engine's layout
/// and tiling wins, but no thread-level ones).
///
/// # Panics
/// Panics when CRAM fails on a generated scenario or the tuned run is
/// not bit-identical to the reference (allocation and every stat except
/// `closeness_computations`, which tiling may only lower).
pub fn bench_report_json(sizes: &[usize], threads: usize, quick: bool) -> String {
    use greenps_core::cram::{Layout, DEFAULT_TILE};
    let available = greenps_core::engine::available_threads();
    let effective_threads = threads.max(1).min(available);
    let mut runs = Vec::new();
    for &n in sizes {
        // Larger clusters keep the bin-packing feasibility baseline
        // satisfiable at 16k subscriptions.
        let scenario = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(n)
            .brokers((n / 50).max(80))
            .seed(9)
            .build();
        let input = ideal_input(&scenario);
        let t0 = Instant::now();
        let (ref_alloc, ref_stats) = CramBuilder::new(ClosenessMetric::Intersect)
            .layout(Layout::PerProfile)
            .tile(0)
            .run(&input)
            .expect("reference CRAM");
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let (tuned_alloc, tuned_stats) = CramBuilder::new(ClosenessMetric::Intersect)
            .layout(Layout::Arena { stride: 0 })
            .tile(DEFAULT_TILE)
            .threads(threads)
            .run(&input)
            .expect("tuned CRAM");
        let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            ref_alloc, tuned_alloc,
            "tuned CRAM must produce a bit-identical allocation"
        );
        assert!(
            tuned_stats.closeness_computations <= ref_stats.closeness_computations,
            "tiling may only lower closeness computations: {} vs {}",
            tuned_stats.closeness_computations,
            ref_stats.closeness_computations
        );
        let mut normalized = tuned_stats;
        normalized.closeness_computations = ref_stats.closeness_computations;
        assert_eq!(
            normalized, ref_stats,
            "tuned CRAM stats must match outside tile pruning"
        );
        let speedup = sequential_ms / parallel_ms.max(1e-9);
        let reduction = 100.0
            * (ref_stats.closeness_computations - tuned_stats.closeness_computations) as f64
            / (ref_stats.closeness_computations as f64).max(1.0);
        println!(
            "bench-report: {n} subs / {} brokers -> reference {sequential_ms:.1} ms, \
             tuned(arena, tile {DEFAULT_TILE}, x{effective_threads}) {parallel_ms:.1} ms \
             ({speedup:.2}x, {reduction:.1}% fewer closeness computations), identical allocation",
            scenario.brokers.len()
        );
        runs.push(format!(
            "    {{\"subscriptions\": {n}, \"brokers\": {}, \"threads\": {threads}, \
             \"effective_threads\": {effective_threads}, \"layout\": \"arena\", \
             \"tile\": {DEFAULT_TILE}, \"sequential_ms\": {sequential_ms:.3}, \
             \"parallel_ms\": {parallel_ms:.3}, \"speedup\": {speedup:.3}, \
             \"allocated_brokers\": {}, \"merges\": {}, \
             \"closeness_computations\": {}, \"reference_computations\": {}, \
             \"reduction\": {reduction:.3}, \"identical\": true}}",
            scenario.brokers.len(),
            ref_alloc.broker_count(),
            ref_stats.merges,
            tuned_stats.closeness_computations,
            ref_stats.closeness_computations,
        ));
    }
    format!(
        "{{\n  \"metric\": \"INTERSECT\",\n  \"quick\": {},\n  \
         \"available_parallelism\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        available,
        runs.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_input_profiles_match_selectivity() {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(200)
            .seed(3)
            .build();
        s.brokers.truncate(10);
        let input = ideal_input(&s);
        check_input(&input);
        assert_eq!(input.subscriptions.len(), 200);
        assert_eq!(input.brokers.len(), 10);
        assert_eq!(input.publishers.len(), 40);
        // Template subscriptions (2 predicates) sink the whole window.
        for e in &input.subscriptions {
            if e.filter.len() == 2 {
                assert_eq!(e.profile.count_ones() as u64, PROFILE_WINDOW);
            } else {
                assert!(e.profile.count_ones() as u64 <= PROFILE_WINDOW);
            }
        }
        // ~70 msg/min
        let p = input.publishers.iter().next().unwrap();
        assert!((p.rate - 70.0 / 60.0).abs() < 0.01);
    }
}
