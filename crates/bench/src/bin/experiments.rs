//! Regenerates every figure/table of the evaluation (DESIGN.md §4).
//!
//! ```text
//! experiments [--quick] [--csv <dir>] [--telemetry <path>]
//!             <e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|bench-report|scale-report|
//!              transport-report|pipeline-smoke|all>
//! ```
//!
//! `--quick` shrinks the grids so the whole suite finishes in a couple
//! of minutes; the default parameters follow the paper (80 brokers, 40
//! publishers at 70 msg/min, 2,000–8,000 subscriptions, heterogeneous
//! tiers, SciNet scales). `bench-report` times the per-profile reference
//! closeness engine against the tuned arena/tiled one and writes
//! `BENCH_cram.json`. `--telemetry <path>` traces every
//! run into a `greenps-telemetry` registry (phase spans, CRAM counters,
//! pair-cache hit rates, per-broker delivery-delay histograms) and
//! writes the whole-run snapshot as JSON at exit.

use greenps_bench::ideal_input;
use greenps_core::cram::{CramBuilder, CramConfig};
use greenps_core::croc::{plan, PlanConfig};
use greenps_core::engine::available_threads;
use greenps_core::model::AllocationInput;
use greenps_core::overlay::{build_overlay, AllocatorKind, OverlayConfig};
use greenps_core::pipeline::{CheckpointStore, PhaseKind, ReconfigContext};
use greenps_core::sorting::{bin_packing, fbf};
use greenps_profile::{ClosenessMetric, Poset};
use greenps_telemetry::{JsonExporter, Registry};
use greenps_workload::report::{outcome_table, reduction_pct, Table};
use greenps_workload::runner::{run_approach, Approach, Outcome, RunConfig};
use greenps_workload::scenario::{Scenario, ScenarioBuilder, Topology};
use greenps_workload::ReconfigPipeline;
use std::path::PathBuf;
use std::time::Instant;

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

fn heterogeneous(ns: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Heterogeneous)
        .ns(ns)
        .seed(seed)
        .build()
}

fn scinet_custom(
    brokers: usize,
    publishers: usize,
    subs_per_publisher: usize,
    seed: u64,
) -> Scenario {
    ScenarioBuilder::new(Topology::Scinet)
        .brokers(brokers)
        .publishers(publishers)
        .subs_per_publisher(subs_per_publisher)
        .seed(seed)
        .build()
}

fn every_broker_subscribes(brokers: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::EveryBrokerSubscribes)
        .brokers(brokers)
        .seed(seed)
        .build()
}

#[derive(Clone)]
struct Opts {
    quick: bool,
    csv: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    registry: Registry,
}

impl Opts {
    /// The reconfiguration context every run executes under.
    fn ctx(&self) -> ReconfigContext {
        ReconfigContext::new().with_registry(&self.registry)
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        quick: false,
        csv: None,
        telemetry: None,
        registry: Registry::disabled(),
    };
    let mut which = Vec::new();
    while let Some(a) = args.first().cloned() {
        args.remove(0);
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => {
                let dir = args.first().expect("--csv needs a directory").clone();
                args.remove(0);
                opts.csv = Some(PathBuf::from(dir));
            }
            "--telemetry" => {
                let path = args.first().expect("--telemetry needs a path").clone();
                args.remove(0);
                opts.telemetry = Some(PathBuf::from(path));
                opts.registry = Registry::new();
            }
            "--help" | "-h" | "help" => {
                println!(
                    "usage: experiments [--quick] [--csv <dir>] [--telemetry <path>] \
                     <e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|bench-report|pipeline-smoke|all>\n\
                     \n\
                     e1-e3   homogeneous cluster: msg rate, brokers, hops/delay\n\
                     e4      heterogeneous cluster (15/25/40 capacity tiers)\n\
                     e5      SciNet large-scale deployments\n\
                     e6      publisher-relocation limitation + GRAPE sweep\n\
                     e7      allocation computation time per algorithm\n\
                     e8      CRAM search-pruning ablation, poset timing\n\
                     e9      one-to-many + overlay optimization ablations\n\
                     e10     bit-vector load-estimation accuracy\n\
                     bench-report  reference vs tuned CRAM -> BENCH_cram.json\n\
                     scale-report  hierarchical zoned CRAM at 100k-1M subs -> BENCH_scale.json\n\
                     transport-report  real loopback TCP overlay deployment -> BENCH_transport.json\n\
                     pipeline-smoke  interrupt + resume a run -> pipeline_checkpoint.json"
                );
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if let Some(dir) = &opts.csv {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for w in which {
        match w.as_str() {
            "e1" | "e2" | "e3" => e1_e2_e3(&opts),
            "e4" => e4(&opts),
            "e5" => e5(&opts),
            "e6" => e6(&opts),
            "e7" => e7(&opts),
            "e8" => e8(&opts),
            "e9" => e9(&opts),
            "e10" => e10(&opts),
            "bench-report" => bench_report(&opts),
            "scale-report" => scale_report(&opts),
            "transport-report" => transport_report(&opts),
            "pipeline-smoke" => pipeline_smoke(&opts),
            "all" => {
                e1_e2_e3(&opts);
                e4(&opts);
                e5(&opts);
                e6(&opts);
                e7(&opts);
                e8(&opts);
                e9(&opts);
                e10(&opts);
            }
            other => eprintln!("unknown experiment: {other}"),
        }
    }
    if let Some(path) = &opts.telemetry {
        let json = JsonExporter::export(&opts.registry.snapshot());
        std::fs::write(path, json).expect("write telemetry json");
        println!("telemetry: wrote {}", path.display());
    }
}

fn emit(opts: &Opts, name: &str, title: &str, table: &Table) {
    println!("\n=== {name}: {title} ===");
    print!("{}", table.render());
    if let Some(dir) = &opts.csv {
        table
            .write_csv(&dir.join(format!("{name}.csv")))
            .expect("write csv");
    }
}

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: greenps_simnet::SimDuration::from_secs(5),
        profile: greenps_simnet::SimDuration::from_secs(90),
        measure: greenps_simnet::SimDuration::from_secs(90),
        seed,
    }
}

fn grid_outcomes(opts: &Opts, scenarios: &[Scenario], approaches: &[Approach]) -> Vec<Outcome> {
    let mut out = Vec::new();
    for s in scenarios {
        for &a in approaches {
            let t0 = Instant::now();
            let o = run_approach(s, a, &run_cfg(s.seed), &opts.ctx());
            eprintln!(
                "[{}] {} -> {} brokers, {:.1} msg/s avg ({:.1}s wall)",
                s.name,
                o.approach,
                o.allocated_brokers,
                o.metrics.avg_broker_msg_rate,
                t0.elapsed().as_secs_f64()
            );
            out.push(o);
        }
    }
    out
}

/// E1–E3: homogeneous cluster — message rate, allocated brokers, hops
/// and delay vs number of subscriptions, for all ten approaches.
fn e1_e2_e3(opts: &Opts) {
    let sizes: &[usize] = if opts.quick {
        &[400, 800]
    } else {
        &[2000, 4000, 6000, 8000]
    };
    let scenarios: Vec<Scenario> = sizes
        .iter()
        .map(|&n| {
            let mut s = homogeneous(n, 1);
            if opts.quick {
                s.brokers.truncate(24);
            }
            s
        })
        .collect();
    let outcomes = grid_outcomes(opts, &scenarios, &Approach::ALL_PAPER);
    emit(
        opts,
        "e1",
        "homogeneous cluster, all approaches",
        &outcome_table(&outcomes),
    );

    // Headline reductions vs MANUAL (the paper's 92% / 91% claims).
    let mut head = Table::new(&[
        "subs",
        "approach",
        "msg-rate reduction vs MANUAL (%)",
        "broker reduction vs MANUAL (%)",
    ]);
    for s in &scenarios {
        let base = outcomes
            .iter()
            .find(|o| o.scenario == s.name && o.approach == "MANUAL")
            .unwrap();
        for o in outcomes.iter().filter(|o| o.scenario == s.name) {
            if o.approach == "MANUAL" {
                continue;
            }
            head.row(vec![
                s.sub_count().to_string(),
                o.approach.clone(),
                format!(
                    "{:.1}",
                    reduction_pct(
                        base.metrics.avg_broker_msg_rate,
                        o.metrics.avg_broker_msg_rate
                    )
                ),
                format!(
                    "{:.1}",
                    reduction_pct(base.allocated_brokers as f64, o.allocated_brokers as f64)
                ),
            ]);
        }
    }
    emit(
        opts,
        "e2",
        "reductions vs MANUAL (headline: up to 92% / 91%)",
        &head,
    );

    let mut hops = Table::new(&["subs", "approach", "mean hops", "mean delay (ms)"]);
    for o in &outcomes {
        hops.row(vec![
            o.subscriptions.to_string(),
            o.approach.clone(),
            format!("{:.2}", o.metrics.mean_hops),
            format!("{:.2}", o.metrics.mean_delay_s * 1e3),
        ]);
    }
    emit(opts, "e3", "hop count and delivery delay", &hops);
}

/// E4: heterogeneous cluster (15×100% / 25×50% / 40×25% capacity).
fn e4(opts: &Opts) {
    let ns: &[usize] = if opts.quick {
        &[50]
    } else {
        &[50, 100, 150, 200]
    };
    let scenarios: Vec<Scenario> = ns.iter().map(|&n| heterogeneous(n, 2)).collect();
    let approaches: &[Approach] = if opts.quick {
        &[
            Approach::Manual,
            Approach::BinPacking,
            Approach::Cram(ClosenessMetric::Ios),
        ]
    } else {
        &Approach::ALL_PAPER
    };
    let outcomes = grid_outcomes(opts, &scenarios, approaches);
    emit(
        opts,
        "e4",
        "heterogeneous cluster",
        &outcome_table(&outcomes),
    );
}

/// E5: SciNet large-scale deployments.
fn e5(opts: &Opts) {
    let scales: Vec<Scenario> = if opts.quick {
        vec![scinet_custom(100, 18, 40, 3)]
    } else {
        // Reduced per-publisher subscription counts keep the full-grid
        // run in minutes while preserving the saturation shape; see
        // EXPERIMENTS.md.
        vec![
            scinet_custom(400, 72, 100, 3),
            scinet_custom(1000, 100, 100, 3),
        ]
    };
    let approaches = [
        Approach::Manual,
        Approach::Automatic,
        Approach::BinPacking,
        Approach::Cram(ClosenessMetric::Ios),
    ];
    let outcomes = grid_outcomes(opts, &scales, &approaches);
    emit(opts, "e5", "SciNet large-scale", &outcome_table(&outcomes));
}

/// E6: publisher relocation alone cannot reduce the message rate when
/// every broker hosts an identical subscription (§II-B).
fn e6(opts: &Opts) {
    let brokers = if opts.quick { 16 } else { 80 };
    let s = every_broker_subscribes(brokers, 4);
    let approaches = [
        Approach::Manual,
        Approach::GrapeOnly,
        Approach::Cram(ClosenessMetric::Ios),
    ];
    let outcomes = grid_outcomes(opts, &[s], &approaches);
    let mut t = Table::new(&["approach", "brokers", "avg msg rate", "vs MANUAL (%)"]);
    let base = outcomes[0].metrics.avg_broker_msg_rate;
    for o in &outcomes {
        t.row(vec![
            o.approach.clone(),
            o.allocated_brokers.to_string(),
            format!("{:.2}", o.metrics.avg_broker_msg_rate),
            format!("{:.1}", reduction_pct(base, o.metrics.avg_broker_msg_rate)),
        ]);
    }
    emit(opts, "e6", "publisher-relocation-only limitation", &t);

    // GRAPE priority sweep: trade total message rate against delivery
    // delay on a normal workload.
    let sweep_scenario = {
        let mut s = homogeneous(if opts.quick { 200 } else { 1000 }, 5);
        if opts.quick {
            s.brokers.truncate(16);
        }
        s
    };
    let mut t = Table::new(&[
        "GRAPE priority P",
        "brokers",
        "avg msg rate",
        "mean delay (ms)",
    ]);
    for priority in [0.0, 0.5, 1.0] {
        let mut plan_cfg = PlanConfig::cram(ClosenessMetric::Ios);
        plan_cfg.grape = greenps_core::grape::GrapeConfig { priority };
        let o = greenps_workload::runner::run_custom_plan(
            &sweep_scenario,
            &format!("CRAM-IOS/P={priority}"),
            &plan_cfg,
            &run_cfg(5),
            &opts.ctx(),
        );
        t.row(vec![
            format!("{priority:.1}"),
            o.allocated_brokers.to_string(),
            format!("{:.2}", o.metrics.avg_broker_msg_rate),
            format!("{:.2}", o.metrics.mean_delay_s * 1e3),
        ]);
    }
    emit(opts, "e6b", "GRAPE load/delay priority sweep", &t);
}

/// E7: allocation algorithm computation time (no simulation).
fn e7(opts: &Opts) {
    let sizes: &[usize] = if opts.quick {
        &[500, 1000]
    } else {
        &[2000, 4000, 6000, 8000]
    };
    let mut t = Table::new(&["subs", "algorithm", "time (ms)", "allocated brokers"]);
    let mut xor_vs_ios: Vec<(f64, f64)> = Vec::new();
    for &n in sizes {
        let scenario = homogeneous(n, 5);
        let input = ideal_input(&scenario);
        let timed = |f: &dyn Fn() -> usize| -> (f64, usize) {
            let t0 = Instant::now();
            let brokers = f();
            (t0.elapsed().as_secs_f64() * 1e3, brokers)
        };
        let (ms, b) = timed(&|| fbf(&input, 5).map(|a| a.broker_count()).unwrap_or(0));
        t.row(vec![
            n.to_string(),
            "FBF".into(),
            format!("{ms:.1}"),
            b.to_string(),
        ]);
        let (ms, b) = timed(&|| bin_packing(&input).map(|a| a.broker_count()).unwrap_or(0));
        t.row(vec![
            n.to_string(),
            "BINPACKING".into(),
            format!("{ms:.1}"),
            b.to_string(),
        ]);
        let mut times = std::collections::BTreeMap::new();
        for metric in ClosenessMetric::ALL {
            let (ms, b) = timed(&|| {
                CramBuilder::new(metric)
                    .run(&input)
                    .map(|(a, _)| a.broker_count())
                    .unwrap_or(0)
            });
            times.insert(metric.to_string(), ms);
            t.row(vec![
                n.to_string(),
                format!("CRAM-{metric}"),
                format!("{ms:.1}"),
                b.to_string(),
            ]);
        }
        xor_vs_ios.push((times["XOR"], times["IOS"]));
    }
    emit(
        opts,
        "e7",
        "allocation computation time (XOR ≥75% slower claim)",
        &t,
    );
    for (x, i) in xor_vs_ios {
        println!("  XOR/IOS time ratio: {:.2}x", x / i.max(1e-9));
    }
}

/// E8: search-pruning ablation, GIF reduction, poset insert time.
fn e8(opts: &Opts) {
    let n = if opts.quick { 1000 } else { 8000 };
    let scenario = homogeneous(n, 6);
    let input = ideal_input(&scenario);
    let mut t = Table::new(&[
        "variant",
        "closeness computations",
        "iterations",
        "merges",
        "brokers",
        "time (ms)",
    ]);
    for (label, pruning) in [("poset-pruned", true), ("exhaustive", false)] {
        let t0 = Instant::now();
        let (alloc, stats) = CramBuilder::new(ClosenessMetric::Ios)
            .poset_pruning(pruning)
            .run(&input)
            .expect("cram");
        t.row(vec![
            label.into(),
            stats.closeness_computations.to_string(),
            stats.iterations.to_string(),
            stats.merges.to_string(),
            alloc.broker_count().to_string(),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
        ]);
        if pruning {
            println!(
                "GIF grouping: {} subscriptions -> {} GIFs ({:.1}% reduction; paper: up to 61%)",
                stats.subscriptions,
                stats.initial_gifs,
                reduction_pct(stats.subscriptions as f64, stats.initial_gifs as f64)
            );
        }
    }
    emit(opts, "e8", "CRAM search-pruning ablation", &t);

    // Poset insert timing (paper: 3,200 GIFs ≈ 2 s).
    let mut poset: Poset<usize> = Poset::new();
    let profiles: Vec<_> = input
        .subscriptions
        .iter()
        .map(|s| s.profile.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let t0 = Instant::now();
    for (i, p) in profiles.iter().enumerate() {
        poset.insert(i, p.clone());
    }
    println!(
        "poset: inserted {} unique GIF profiles in {:.2} s ({} relationship ops)",
        profiles.len(),
        t0.elapsed().as_secs_f64(),
        poset.relation_ops()
    );
}

/// E9: one-to-many (CGS) ablation and overlay-optimization ablation.
fn e9(opts: &Opts) {
    let n = if opts.quick { 800 } else { 4000 };
    let scenario = homogeneous(n, 7);
    let input = ideal_input(&scenario);

    let mut t = Table::new(&["variant", "merges", "one-to-many merges", "brokers"]);
    for (label, otm) in [("with one-to-many", true), ("pairwise only", false)] {
        let (alloc, stats) = CramBuilder::new(ClosenessMetric::Ios)
            .one_to_many(otm)
            .run(&input)
            .expect("cram");
        t.row(vec![
            label.into(),
            stats.merges.to_string(),
            stats.one_to_many_merges.to_string(),
            alloc.broker_count().to_string(),
        ]);
    }
    emit(opts, "e9", "one-to-many clustering ablation", &t);

    // Overlay optimization ablation over a fixed leaf allocation.
    let (leaf, _) = CramBuilder::new(ClosenessMetric::Ios)
        .run(&input)
        .expect("leaf");
    let mut t = Table::new(&[
        "overlay variant",
        "total brokers",
        "pure forwarders removed",
        "takeovers",
        "best-fit swaps",
    ]);
    let variants: [(&str, bool, bool, bool); 5] = [
        ("all optimizations", true, true, true),
        ("no pure-forwarder elimination", false, true, true),
        ("no takeover", true, false, true),
        ("no best-fit", true, true, false),
        ("none", false, false, false),
    ];
    for (label, pf, take, fit) in variants {
        let cfg = OverlayConfig {
            allocator: AllocatorKind::Cram(CramConfig::with_metric(ClosenessMetric::Ios)),
            eliminate_pure_forwarders: pf,
            takeover_children: take,
            best_fit_replacement: fit,
        };
        let overlay = build_overlay(&input, &leaf, &cfg).expect("overlay");
        t.row(vec![
            label.into(),
            overlay.broker_count().to_string(),
            overlay.stats.pure_forwarders_removed.to_string(),
            overlay.stats.takeovers.to_string(),
            overlay.stats.best_fit_swaps.to_string(),
        ]);
    }
    emit(
        opts,
        "e9b",
        "overlay construction optimization ablation",
        &t,
    );
}

/// E10: bit-vector load-estimation accuracy — estimated subscription
/// rates vs rates actually observed in the simulator.
fn e10(opts: &Opts) {
    let n = if opts.quick { 200 } else { 1000 };
    let mut scenario = homogeneous(n, 8);
    scenario.brokers.truncate(20);
    let cfg = run_cfg(8);
    let (_, input) = greenps_workload::runner::profile_and_gather(&scenario, &cfg, &opts.ctx());

    // Ground truth: exact selectivity over the publication stream.
    let ideal = ideal_input(&scenario);
    let mut t = Table::new(&["percentile", "relative rate-estimation error (%)"]);
    let mut errors: Vec<f64> = Vec::new();
    for entry in &input.subscriptions {
        let est = entry.profile.estimate_load(&input.publishers).rate;
        let truth_entry = ideal
            .subscriptions
            .iter()
            .find(|e| e.id == entry.id)
            .expect("same ids");
        let truth = truth_entry.profile.estimate_load(&ideal.publishers).rate;
        if truth > 0.0 {
            errors.push(100.0 * (est - truth).abs() / truth);
        }
    }
    errors.sort_by(f64::total_cmp);
    for q in [0.5, 0.9, 0.99] {
        let idx = ((errors.len() as f64 * q) as usize).min(errors.len() - 1);
        t.row(vec![
            format!("p{:.0}", q * 100.0),
            format!("{:.1}", errors[idx]),
        ]);
    }
    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    t.row(vec!["mean".into(), format!("{mean:.1}")]);
    emit(opts, "e10", "bit-vector framework estimation accuracy", &t);

    // The framework feeds the planner: confirm a plan from *measured*
    // profiles matches one from ideal profiles within a broker or two.
    let measured =
        plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &opts.ctx()).expect("plan");
    let perfect = plan(&ideal, &PlanConfig::cram(ClosenessMetric::Ios), &opts.ctx()).expect("plan");
    println!(
        "plan from measured profiles: {} brokers; from ideal profiles: {} brokers",
        measured.broker_count(),
        perfect.broker_count()
    );

    // E10b: bit-vector capacity sweep — "a larger size will improve the
    // accuracy of estimating the anticipated load of a subscription, but
    // will lengthen the time required to profile subscriptions" (§III-B).
    let mut t = Table::new(&["bit-vector capacity", "mean rate-estimation error (%)"]);
    for bits in [160usize, 320, 640, 1280] {
        let mut s = scenario.clone();
        for b in &mut s.brokers {
            b.profile_bits = bits;
        }
        let (_, input_b) = greenps_workload::runner::profile_and_gather(&s, &cfg, &opts.ctx());
        let mut errs = Vec::new();
        for entry in &input_b.subscriptions {
            let est = entry.profile.estimate_load(&input_b.publishers).rate;
            if let Some(truth_entry) = ideal.subscriptions.iter().find(|e| e.id == entry.id) {
                let truth = truth_entry.profile.estimate_load(&ideal.publishers).rate;
                if truth > 0.0 {
                    errs.push(100.0 * (est - truth).abs() / truth);
                }
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        t.row(vec![bits.to_string(), format!("{mean:.1}")]);
    }
    emit(
        opts,
        "e10b",
        "bit-vector capacity vs estimation accuracy",
        &t,
    );
    let _ = AllocationInput::new();
}

/// `pipeline-smoke`: run CRAM-IOS interrupted after the overlay builds,
/// export the checkpoint store as JSON (`pipeline_checkpoint.json`,
/// into `--csv <dir>` when given), reload it, resume, and verify the
/// resumed outcome is bit-identical to a straight-through run.
fn pipeline_smoke(opts: &Opts) {
    let mut scenario = homogeneous(if opts.quick { 150 } else { 400 }, 9);
    if opts.quick {
        scenario.brokers.truncate(12);
    }
    let cfg = RunConfig {
        warmup: greenps_simnet::SimDuration::from_secs(2),
        profile: greenps_simnet::SimDuration::from_secs(40),
        measure: greenps_simnet::SimDuration::from_secs(40),
        seed: 9,
    };
    let run = ReconfigPipeline::approach(&scenario, Approach::Cram(ClosenessMetric::Ios), cfg);
    let ctx = opts.ctx();
    let straight = run.run(&ctx).expect("straight run");

    let store = run
        .run_until(&ctx, PhaseKind::BuildOverlay)
        .expect("interrupted run");
    let json = store.to_json();
    let path = match &opts.csv {
        Some(dir) => dir.join("pipeline_checkpoint.json"),
        None => PathBuf::from("pipeline_checkpoint.json"),
    };
    std::fs::write(&path, &json).expect("write checkpoint json");

    let reloaded = CheckpointStore::from_json(&json).expect("reload checkpoint json");
    let resumed = run.resume(&ctx, reloaded).expect("resumed run");

    assert_eq!(resumed.allocated_brokers, straight.allocated_brokers);
    assert_eq!(resumed.cram_stats, straight.cram_stats);
    assert_eq!(resumed.metrics.deliveries, straight.metrics.deliveries);
    assert_eq!(resumed.metrics.total_msgs, straight.metrics.total_msgs);
    assert_eq!(
        resumed.metrics.avg_broker_msg_rate.to_bits(),
        straight.metrics.avg_broker_msg_rate.to_bits(),
        "resumed pool average must be bit-identical"
    );
    println!(
        "pipeline-smoke: interrupted after {} of 5 phases, resumed bit-identically \
         ({} brokers, {} deliveries); checkpoint at {}",
        store.completed().len(),
        resumed.allocated_brokers,
        resumed.metrics.deliveries,
        path.display()
    );
}

/// `scale-report`: hierarchical zoned allocation (DESIGN.md §12) over
/// streaming workloads — 100k subscriptions in quick mode, plus a
/// 1M-subscription row in the full run. Writes `BENCH_scale.json`
/// (into `--csv <dir>` when given, else the cwd).
fn scale_report(opts: &Opts) {
    // Zone counts keep the largest zone's GIF pool small enough for the
    // quadratic closest-pair search; the skew-1 weighting makes zone 0
    // roughly 2x the mean so the memory bound is actually exercised.
    let rows: &[(usize, usize)] = if opts.quick {
        &[(100_000, 8)]
    } else {
        &[(100_000, 8), (1_000_000, 64)]
    };
    let threads = available_threads().clamp(1, 8);
    let json = greenps_bench::scale_report_json(rows, threads, opts.quick);
    let path = match &opts.csv {
        Some(dir) => dir.join("BENCH_scale.json"),
        None => PathBuf::from("BENCH_scale.json"),
    };
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    println!("scale-report: wrote {}", path.display());
}

/// `transport-report`: deploy stock-chain overlays as real loopback
/// TCP threads (`greenps_net::TcpTransport` — one OS thread per
/// connection plus accept loops), measure delivered msgs/sec and
/// per-broker delivery latency, and write `BENCH_transport.json` (into
/// `--csv <dir>` when given, else the cwd).
fn transport_report(opts: &Opts) {
    let rows: &[(usize, u64)] = if opts.quick {
        &[(4, 50)]
    } else {
        &[(4, 100), (8, 200)]
    };
    let json = greenps_bench::transport_report_json(rows, opts.quick);
    let path = match &opts.csv {
        Some(dir) => dir.join("BENCH_transport.json"),
        None => PathBuf::from("BENCH_transport.json"),
    };
    std::fs::write(&path, json).expect("write BENCH_transport.json");
    println!("transport-report: wrote {}", path.display());
}

/// `bench-report`: reference vs tuned (arena layout, tiled pruning,
/// threaded) CRAM-INTERSECT wall time at increasing subscription
/// counts, with the bit-identity check. Writes `BENCH_cram.json` (into
/// `--csv <dir>` when given, else the cwd).
fn bench_report(opts: &Opts) {
    // The 100k row is the scale canary: it rides along even in quick
    // mode so CI's bench-smoke artifact catches regressions at scale
    // (GIF grouping keeps the pool small enough for this to be cheap).
    let sizes: &[usize] = if opts.quick {
        &[300, 600, 100_000]
    } else {
        &[1000, 4000, 16_000, 100_000]
    };
    // At least 4 workers so the report always exercises the sharded
    // path; on a machine with fewer cores the parallel timing degrades
    // toward parity and the recorded `available_parallelism` says why.
    let threads = available_threads().clamp(4, 8);
    let json = greenps_bench::bench_report_json(sizes, threads, opts.quick);
    let path = match &opts.csv {
        Some(dir) => dir.join("BENCH_cram.json"),
        None => PathBuf::from("BENCH_cram.json"),
    };
    std::fs::write(&path, json).expect("write BENCH_cram.json");
    println!("bench-report: wrote {}", path.display());
}
