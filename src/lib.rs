//! # greenps
//!
//! Facade crate for the Green Resource Allocation reproduction
//! (Cheung & Jacobsen, ICDCS 2011). Re-exports all workspace crates.
//!
//! See the README for a quickstart and `DESIGN.md` for the system
//! inventory.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use greenps_broker as broker;
pub use greenps_core as core;
pub use greenps_profile as profile;
pub use greenps_pubsub as pubsub;
pub use greenps_simnet as simnet;
pub use greenps_telemetry as telemetry;
pub use greenps_workload as workload;
