//! Smoke tests of the experiment harness pieces at tiny scale: every
//! experiment's computational core runs and produces sane shapes, and
//! the telemetry the harness emits stays within the declared schema
//! (`analysis/telemetry-schema.txt`).

use greenps::core::cram::CramBuilder;
use greenps::core::croc::{plan, PlanConfig};
use greenps::core::overlay::{build_overlay, AllocatorKind, OverlayConfig};
use greenps::core::pairwise::{pairwise_k, pairwise_n};
use greenps::core::pipeline::{CancelToken, ReconfigContext};
use greenps::core::sorting::{bin_packing, fbf};
use greenps::profile::ClosenessMetric;
use greenps_analysis::telemetry_schema::Schema;
use greenps_bench::{check_input, ideal_input};
use greenps_simnet::SimDuration;
use greenps_telemetry::Registry;
use greenps_workload::runner::{run_approach, Approach, RunConfig};
use greenps_workload::{Scenario, ScenarioBuilder, Topology};

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

#[test]
fn e1_core_all_algorithms_allocate_same_subscriptions() {
    let mut scenario = homogeneous(200, 71);
    scenario.brokers.truncate(20);
    let input = ideal_input(&scenario);
    check_input(&input);

    let manual_brokers = scenario.broker_count();
    let fbf_alloc = fbf(&input, 71).unwrap();
    let bp = bin_packing(&input).unwrap();
    assert!(bp.broker_count() <= fbf_alloc.broker_count());
    for metric in ClosenessMetric::ALL {
        let (alloc, stats) = CramBuilder::new(metric).run(&input).unwrap();
        assert_eq!(alloc.sub_count(), 200, "{metric}");
        assert!(alloc.broker_count() <= bp.broker_count(), "{metric}");
        assert!(alloc.broker_count() < manual_brokers, "{metric}");
        assert!(
            stats.initial_gifs < stats.subscriptions,
            "{metric}: GIFs group"
        );
    }
    let pk = pairwise_k(&input, 10, 71, &CancelToken::never()).unwrap();
    assert_eq!(pk.allocation.sub_count(), 200);
    let pn = pairwise_n(&input, 71, &CancelToken::never()).unwrap();
    assert_eq!(pn.allocation.sub_count(), 200);
    assert!(pn.clusters <= 20);
}

#[test]
fn e4_core_heterogeneous_prefers_big_brokers() {
    let scenario = ScenarioBuilder::new(Topology::Heterogeneous)
        .ns(40)
        .seed(72)
        .build();
    let input = ideal_input(&scenario);
    let (alloc, _) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
    // The most resourceful brokers absorb the heaviest loads: the
    // busiest allocated broker must be a full-capacity one.
    let busiest = alloc
        .loads
        .iter()
        .max_by(|a, b| a.out_bw_used.total_cmp(&b.out_bw_used))
        .unwrap();
    let spec = input
        .brokers
        .iter()
        .find(|b| b.id == busiest.broker)
        .unwrap();
    let max_bw = input
        .brokers
        .iter()
        .map(|b| b.out_bandwidth)
        .fold(0.0, f64::max);
    assert_eq!(spec.out_bandwidth, max_bw, "heaviest load on a full broker");
}

#[test]
fn e5_core_scales_to_hundreds_of_brokers() {
    let scenario = ScenarioBuilder::new(Topology::Scinet)
        .brokers(120)
        .publishers(10)
        .subs_per_publisher(20)
        .seed(73)
        .build();
    let input = ideal_input(&scenario);
    let p = plan(
        &input,
        &PlanConfig::cram(ClosenessMetric::Iou),
        &ReconfigContext::new(),
    )
    .unwrap();
    assert!(
        p.broker_count() < 120 / 2,
        "collapses the pool: {}",
        p.broker_count()
    );
    p.overlay.check_tree();
}

#[test]
fn e8_core_pruning_cuts_computations_at_scale() {
    let mut scenario = homogeneous(320, 74);
    scenario.brokers.truncate(30);
    let input = ideal_input(&scenario);
    let pruned = CramBuilder::new(ClosenessMetric::Ios)
        .poset_pruning(true)
        .run(&input)
        .unwrap()
        .1;
    let full = CramBuilder::new(ClosenessMetric::Ios)
        .poset_pruning(false)
        .run(&input)
        .unwrap()
        .1;
    assert!(
        pruned.closeness_computations * 2 < full.closeness_computations,
        "pruning cuts computations by half or more: {} vs {}",
        pruned.closeness_computations,
        full.closeness_computations
    );
}

#[test]
fn e9_core_overlay_opts_monotone() {
    let mut scenario = homogeneous(240, 75);
    scenario.brokers.truncate(24);
    let input = ideal_input(&scenario);
    let (leaf, _) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
    let all_on = build_overlay(
        &input,
        &leaf,
        &OverlayConfig::new(AllocatorKind::BinPacking),
    )
    .unwrap();
    let mut cfg = OverlayConfig::new(AllocatorKind::BinPacking);
    cfg.eliminate_pure_forwarders = false;
    cfg.takeover_children = false;
    cfg.best_fit_replacement = false;
    let all_off = build_overlay(&input, &leaf, &cfg).unwrap();
    assert!(all_on.broker_count() <= all_off.broker_count());
    assert!(all_on.depth() <= all_off.depth() + 1);
}

fn load_schema() -> Schema {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/analysis/telemetry-schema.txt");
    let text = std::fs::read_to_string(path).expect("read analysis/telemetry-schema.txt");
    let schema = Schema::parse("analysis/telemetry-schema.txt", &text);
    assert!(
        schema.errors.is_empty(),
        "schema errors: {:?}",
        schema.errors
    );
    schema
}

/// Every instrument name a traced end-to-end run registers — the same
/// registry contents `experiments --telemetry <path>` exports — must be
/// declared in `analysis/telemetry-schema.txt`.
#[test]
fn traced_run_snapshot_matches_telemetry_schema() {
    let schema = load_schema();
    let mut scenario = homogeneous(60, 77);
    scenario.brokers.truncate(10);
    let registry = Registry::new();
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(1),
        profile: SimDuration::from_secs(20),
        measure: SimDuration::from_secs(5),
        seed: 77,
    };
    let outcome = run_approach(
        &scenario,
        Approach::Cram(greenps::profile::ClosenessMetric::Intersect),
        &cfg,
        &ReconfigContext::new().with_registry(&registry),
    );
    assert_eq!(outcome.subscriptions, 60);

    let snap = registry.snapshot();
    let mut checked = 0usize;
    for (group, names) in [
        ("counter", snap.counters.keys().collect::<Vec<_>>()),
        ("gauge", snap.gauges.keys().collect::<Vec<_>>()),
        ("histogram", snap.histograms.keys().collect::<Vec<_>>()),
        ("span", snap.spans.keys().collect::<Vec<_>>()),
        ("ring", snap.rings.keys().collect::<Vec<_>>()),
    ] {
        for name in names {
            checked += 1;
            assert!(
                schema.matches(group, name),
                "{group} `{name}` is not declared in analysis/telemetry-schema.txt"
            );
        }
    }
    for ring in snap.rings.values() {
        for event in &ring.events {
            checked += 1;
            assert!(
                schema.matches("event", &event.kind),
                "ring event kind `{}` is not declared in analysis/telemetry-schema.txt",
                event.kind
            );
        }
    }
    // The traced run actually produced telemetry worth checking.
    assert!(checked > 10, "only {checked} names checked");
    assert!(snap.spans.keys().any(|s| s == "phase2.allocation"));
    assert!(snap.counters.keys().any(|c| c == "cram.merges"));
}

/// Collects every `"key":` token of a JSON report body.
fn json_keys(json: &str, keys: &mut std::collections::BTreeSet<String>) {
    let mut rest = json;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let after = tail[end + 1..].trim_start();
        if after.starts_with(':') {
            keys.insert(tail[..end].to_string());
        }
        rest = &tail[end + 1..];
    }
}

/// The combined key vocabulary of `BENCH_cram.json`, `BENCH_scale.json`
/// and `BENCH_transport.json` equals the `benchkey` declarations of the
/// schema — no undeclared keys, no dead entries.
#[test]
fn bench_report_keys_match_telemetry_schema() {
    let schema = load_schema();

    let mut keys = std::collections::BTreeSet::new();
    json_keys(&greenps_bench::bench_report_json(&[60], 2, true), &mut keys);
    json_keys(
        &greenps_bench::scale_report_json(&[(600, 4)], 2, true),
        &mut keys,
    );
    json_keys(
        &greenps_bench::transport_report_json(&[(3, 10)], true),
        &mut keys,
    );
    assert!(!keys.is_empty(), "no keys parsed out of the bench JSON");

    let declared: std::collections::BTreeSet<String> = schema
        .entries
        .iter()
        .filter(|e| e.kind == "benchkey")
        .map(|e| e.name.clone())
        .collect();
    for key in &keys {
        assert!(
            declared.contains(key),
            "bench report key `{key}` is not a declared benchkey"
        );
    }
    for key in &declared {
        assert!(
            keys.contains(key),
            "benchkey `{key}` is dead: the report no longer emits it"
        );
    }
}
