//! Phase-1 correctness: the BIR/BIA protocol gathers every broker's
//! spec, the CBC's bit-vector profiles reflect real deliveries, and the
//! load estimates derived from them track true subscription loads.

use greenps::broker::Deployment;
use greenps::core::pipeline::ReconfigContext;
use greenps::simnet::SimDuration;
use greenps::workload::runner::{profile_and_gather, RunConfig};
use greenps::workload::{deploy, manual, Scenario, ScenarioBuilder, Topology};

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

#[test]
fn gather_reaches_every_broker_and_profiles_fill() {
    let mut scenario = homogeneous(80, 61);
    scenario.brokers.truncate(10);
    let placement = manual(&scenario, 61);
    let mut d: Deployment = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(90));

    let infos = d.gather(SimDuration::from_secs(30)).expect("gather");
    assert_eq!(infos.len(), 10, "every broker answered the BIR");
    let input = Deployment::allocation_input(infos);
    assert_eq!(input.subscriptions.len(), 80);
    assert_eq!(input.publishers.len(), 40);

    // Template subscriptions sink every publication of their stock: the
    // estimated rate should approach the publication rate (70 msg/min).
    let mut template_rates = Vec::new();
    for e in &input.subscriptions {
        if e.filter.len() == 2 && e.profile.count_ones() > 0 {
            template_rates.push(e.profile.estimate_load(&input.publishers).rate);
        }
    }
    assert!(!template_rates.is_empty());
    let mean = template_rates.iter().sum::<f64>() / template_rates.len() as f64;
    assert!(
        (0.9..1.45).contains(&mean),
        "template subscription rate ≈ 70/60 msg/s, got {mean}"
    );
}

#[test]
fn repeated_gathers_are_consistent() {
    let mut scenario = homogeneous(40, 62);
    scenario.brokers.truncate(8);
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(4),
        profile: SimDuration::from_secs(60),
        measure: SimDuration::from_secs(30),
        seed: 62,
    };
    let ctx = ReconfigContext::new();
    let (_, a) = profile_and_gather(&scenario, &cfg, &ctx);
    let (_, b) = profile_and_gather(&scenario, &cfg, &ctx);
    // Same deterministic simulation → identical gathered state.
    assert_eq!(a.subscriptions.len(), b.subscriptions.len());
    assert_eq!(a.brokers.len(), b.brokers.len());
    for (x, y) in a.subscriptions.iter().zip(&b.subscriptions) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.profile.count_ones(), y.profile.count_ones());
    }
}
