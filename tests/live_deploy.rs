//! A CROC plan executed on the live threaded runtime: the overlay the
//! planner designed must deliver real publications across OS threads.

use greenps::broker::live::LiveNet;
use greenps::core::croc::{plan, PlanConfig};
use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::pubsub::filter::stock_advertisement;
use greenps::pubsub::ids::{AdvId, MsgId};
use greenps::pubsub::message::{Advertisement, Subscription};
use greenps_bench::ideal_input;
use greenps_workload::{ScenarioBuilder, Topology};
use std::time::Duration;

#[test]
fn plan_runs_on_live_threads() {
    let mut scenario = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(120)
        .seed(51)
        .build();
    scenario.brokers.truncate(12);
    let input = ideal_input(&scenario);
    let ctx = ReconfigContext::new();
    let plan = plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &ctx).expect("plan");

    let brokers: Vec<_> = plan.overlay.nodes().map(|n| n.broker).collect();
    let edges: Vec<_> = plan.overlay.edges().collect();
    let mut net = LiveNet::start(&brokers, &edges, &ctx).expect("start live net");
    std::thread::sleep(Duration::from_millis(30));

    // One publisher (the first stock) at its GRAPE home.
    let stock = &scenario.stocks[0];
    let adv = AdvId::new(1);
    let home = plan
        .publisher_homes
        .get(&adv)
        .copied()
        .unwrap_or(plan.overlay.root());
    let publisher = net
        .publisher(
            home,
            Advertisement::new(adv, stock_advertisement(&stock.symbol)),
        )
        .expect("attach publisher");
    std::thread::sleep(Duration::from_millis(30));

    // Subscribers that follow stock 0, at their planned homes.
    let mut inboxes = Vec::new();
    let mut expected = Vec::new();
    for sub in scenario.subs.iter().filter(|s| s.publisher_index == 0) {
        let home = plan.subscription_homes[&sub.id];
        inboxes.push(
            net.subscriber(home, Subscription::new(sub.id, sub.filter.clone()))
                .expect("attach subscriber"),
        );
        expected.push(sub.filter.clone());
    }
    assert!(!inboxes.is_empty());
    std::thread::sleep(Duration::from_millis(80));

    // Publish 30 quotes and compare against the oracle per subscriber.
    let pubs: Vec<_> = (0..30)
        .map(|m| stock.publication(adv, MsgId::new(m)))
        .collect();
    for p in &pubs {
        publisher.publish(p.clone());
    }
    std::thread::sleep(Duration::from_millis(300));

    for (inbox, filter) in inboxes.iter().zip(&expected) {
        let oracle = pubs.iter().filter(|p| filter.matches(p)).count();
        let mut got = 0;
        while inbox.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, oracle, "live deliveries for {filter}");
    }
    net.shutdown().expect("clean shutdown");
}
