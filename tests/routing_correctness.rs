//! Routing correctness: on a random broker tree with a random
//! stock-quote workload, every subscriber receives exactly the
//! publications its filter matches — no false positives, no false
//! negatives — as judged by an offline matching oracle.

use greenps::broker::{Deployment, PublisherClient, SubscriberClient};
use greenps::pubsub::ids::{AdvId, MsgId};
use greenps::simnet::SimDuration;
use greenps::workload::{automatic, deploy, Scenario, ScenarioBuilder, Topology};

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

#[test]
fn deliveries_match_offline_oracle() {
    let mut scenario = homogeneous(120, 21);
    scenario.brokers.truncate(12);
    let placement = automatic(&scenario, 21);
    let mut d: Deployment = deploy(&scenario, &placement);

    // Count every delivery from t = 0.
    d.run_for(SimDuration::from_secs(60));

    // Exact oracle: each publisher emitted message ids
    // 0..published(); a subscriber must have received exactly the
    // matching ones (allowing a couple still in flight at the cut).
    let published: Vec<u64> = (0..scenario.publisher_count())
        .map(|i| {
            let node = d.publishers[&AdvId::new(i as u64 + 1)];
            d.net.node_as::<PublisherClient>(node).unwrap().published()
        })
        .collect();
    for (i, sub) in scenario.subs.iter().enumerate() {
        let stock = &scenario.stocks[sub.publisher_index];
        let adv = AdvId::new(sub.publisher_index as u64 + 1);
        let matching = (0..published[sub.publisher_index])
            .filter(|&m| sub.filter.matches(&stock.publication(adv, MsgId::new(m))))
            .count() as i64;
        let node = d.subscribers[&greenps::pubsub::ids::ClientId::new(2_000_000 + sub.id.raw())];
        let got = d
            .net
            .node_as::<SubscriberClient>(node)
            .unwrap()
            .deliveries() as i64;
        assert!(
            (matching - got) <= 3 && got <= matching,
            "sub {i} ({}): delivered {got}, oracle {matching}",
            sub.filter
        );
    }
}

#[test]
fn no_duplicate_deliveries_in_tree() {
    // In a tree overlay each publication reaches a subscriber at most
    // once: total deliveries == sum over subscribers of matching count.
    let mut scenario = homogeneous(60, 22);
    scenario.brokers.truncate(8);
    let placement = automatic(&scenario, 22);
    let mut d = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(3));
    let m1 = d.measure(SimDuration::from_secs(30));
    let m2 = d.measure(SimDuration::from_secs(30));
    // Stationary workload: consecutive windows deliver similar counts.
    let ratio = m1.deliveries as f64 / m2.deliveries.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "windows differ: {} vs {}",
        m1.deliveries,
        m2.deliveries
    );
}
