//! Checkpoint/resume identity: interrupting the reconfiguration
//! pipeline after any phase and resuming from the exported checkpoint
//! JSON must reproduce the straight-through run bit for bit —
//! allocations, overlay-derived placement metrics, and CramStats — for
//! every closeness metric and thread budget.

use greenps::core::pipeline::{CheckpointStore, PhaseKind, ReconfigContext};
use greenps::profile::ClosenessMetric;
use greenps::simnet::SimDuration;
use greenps::workload::runner::{Approach, Outcome, RunConfig};
use greenps::workload::{ReconfigPipeline, Scenario, ScenarioBuilder, Topology};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const STOPS: [PhaseKind; 5] = [
    PhaseKind::Gather,
    PhaseKind::Allocate,
    PhaseKind::BuildOverlay,
    PhaseKind::Deploy,
    PhaseKind::Measure,
];

fn scenario() -> (Scenario, RunConfig) {
    let mut s = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(60)
        .seed(41)
        .build();
    s.brokers.truncate(10);
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(2),
        profile: SimDuration::from_secs(30),
        measure: SimDuration::from_secs(30),
        seed: 41,
    };
    (s, cfg)
}

/// Straight-through outcomes, computed once per (metric, threads) pair —
/// the reference each interrupted/resumed case is compared against.
fn straight(metric_i: usize, threads_i: usize) -> Outcome {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Outcome>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("straight-run cache");
    cache
        .entry((metric_i, threads_i))
        .or_insert_with(|| {
            let (s, cfg) = scenario();
            let metric = ClosenessMetric::ALL[metric_i];
            let ctx = ReconfigContext::new().with_threads(THREADS[threads_i]);
            ReconfigPipeline::approach(&s, Approach::Cram(metric), cfg)
                .run(&ctx)
                .expect("straight run")
        })
        .clone()
}

fn assert_bit_identical(resumed: &Outcome, reference: &Outcome, label: &str) {
    assert_eq!(
        resumed.allocated_brokers, reference.allocated_brokers,
        "{label}"
    );
    assert_eq!(resumed.cram_stats, reference.cram_stats, "{label}");
    assert_eq!(resumed.overlay_stats, reference.overlay_stats, "{label}");
    assert_eq!(
        resumed.metrics.deliveries, reference.metrics.deliveries,
        "{label}"
    );
    assert_eq!(
        resumed.metrics.total_msgs, reference.metrics.total_msgs,
        "{label}"
    );
    assert_eq!(
        resumed.metrics.avg_broker_msg_rate.to_bits(),
        reference.metrics.avg_broker_msg_rate.to_bits(),
        "{label}: pool-average message rate"
    );
    assert_eq!(
        resumed.metrics.avg_active_broker_msg_rate.to_bits(),
        reference.metrics.avg_active_broker_msg_rate.to_bits(),
        "{label}: active-average message rate"
    );
    assert_eq!(
        resumed.metrics.mean_hops.to_bits(),
        reference.metrics.mean_hops.to_bits(),
        "{label}: mean hops"
    );
    assert_eq!(
        resumed.metrics.mean_delay_s.to_bits(),
        reference.metrics.mean_delay_s.to_bits(),
        "{label}: mean delay"
    );
    // Per-broker rates pin down the overlay: a different tree or
    // placement shifts traffic between brokers even when the averages
    // happen to agree.
    assert_eq!(
        resumed.metrics.broker_msg_rates.len(),
        reference.metrics.broker_msg_rates.len(),
        "{label}"
    );
    for ((rb, rr), (sb, sr)) in resumed
        .metrics
        .broker_msg_rates
        .iter()
        .zip(&reference.metrics.broker_msg_rates)
    {
        assert_eq!(rb, sb, "{label}: broker order");
        assert_eq!(rr.to_bits(), sr.to_bits(), "{label}: rate of {rb}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interrupt after a phase, export the store to JSON, reload, and
    /// resume: the outcome equals the straight-through run bit for bit.
    #[test]
    fn interrupted_and_resumed_run_is_bit_identical(
        metric_i in 0usize..4,
        threads_i in 0usize..4,
        stop_i in 0usize..5,
    ) {
        let (s, cfg) = scenario();
        let metric = ClosenessMetric::ALL[metric_i];
        let run = ReconfigPipeline::approach(&s, Approach::Cram(metric), cfg);
        let ctx = ReconfigContext::new().with_threads(THREADS[threads_i]);
        let label = format!("CRAM-{metric} t={} stop={:?}", THREADS[threads_i], STOPS[stop_i]);

        let store = run.run_until(&ctx, STOPS[stop_i]).expect("interrupted run");
        prop_assert_eq!(
            store.completed(),
            STOPS[..=stop_i].to_vec(),
            "checkpoints accumulate in phase order: {}", label
        );

        // The JSON codec is stable: decode(encode(store)) re-encodes
        // byte-identically, so a checkpoint survives being persisted.
        let json = store.to_json();
        let reloaded = CheckpointStore::from_json(&json).expect("reload checkpoints");
        prop_assert_eq!(&reloaded.to_json(), &json, "checkpoint JSON round-trips");

        let resumed = run.resume(&ctx, reloaded).expect("resumed run");
        assert_bit_identical(&resumed, &straight(metric_i, threads_i), &label);
    }
}
