//! End-to-end three-phase reconfiguration: the full paper pipeline on a
//! small simulated cluster, asserting the paper's qualitative results.

use greenps::core::croc::{plan, PlanConfig};
use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::simnet::SimDuration;
use greenps::workload::runner::{profile_and_gather, run_approach, Approach, RunConfig};
use greenps::workload::{deploy, from_plan, Scenario, ScenarioBuilder, Topology};

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: SimDuration::from_secs(4),
        profile: SimDuration::from_secs(90),
        measure: SimDuration::from_secs(90),
        seed,
    }
}

#[test]
fn three_phase_pipeline_preserves_traffic_and_reduces_brokers() {
    let mut scenario = homogeneous(160, 31);
    scenario.brokers.truncate(20);
    let cfg = cfg(31);
    let ctx = ReconfigContext::new();

    // Phase 1 against the MANUAL deployment.
    let (_, input) = profile_and_gather(&scenario, &cfg, &ctx);
    assert_eq!(input.brokers.len(), 20);
    assert_eq!(input.subscriptions.len(), 160);
    assert_eq!(input.publishers.len(), 40);

    // Gathered publisher rates should approximate 70 msg/min.
    for p in input.publishers.iter() {
        assert!(
            (0.8..1.6).contains(&p.rate),
            "gathered rate {} for {}",
            p.rate,
            p.adv_id
        );
    }

    // Phases 2–3 + GRAPE.
    let plan = plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &ctx).expect("plan");
    assert!(
        plan.broker_count() < 20,
        "brokers reduced: {}",
        plan.broker_count()
    );
    assert_eq!(plan.subscription_homes.len(), 160);

    // Redeploy and verify traffic still flows at the same delivery rate.
    let placement = from_plan(&scenario, &plan);
    let mut d = deploy(&scenario, &placement);
    d.run_for(cfg.warmup);
    let after = d.measure(cfg.measure);
    assert!(after.deliveries > 0);
    // Compare against the MANUAL deployment's delivery volume.
    let manual = run_approach(&scenario, Approach::Manual, &cfg, &ctx);
    let ratio = after.deliveries as f64 / manual.metrics.deliveries as f64;
    assert!(
        (0.85..1.18).contains(&ratio),
        "delivery volume preserved: after {} vs manual {}",
        after.deliveries,
        manual.metrics.deliveries
    );
}

#[test]
fn all_four_metrics_produce_valid_plans() {
    let mut scenario = homogeneous(100, 32);
    scenario.brokers.truncate(16);
    let ctx = ReconfigContext::new();
    let (_, input) = profile_and_gather(&scenario, &cfg(32), &ctx);
    for metric in ClosenessMetric::ALL {
        let plan = plan(&input, &PlanConfig::cram(metric), &ctx).expect("plan");
        plan.overlay.check_tree();
        assert_eq!(plan.subscription_homes.len(), 100, "{metric}");
        assert!(plan.broker_count() <= 16, "{metric}");
        // Every subscription home is part of the tree.
        for b in plan.subscription_homes.values() {
            assert!(plan.overlay.node(*b).is_some(), "{metric}");
        }
    }
}

#[test]
fn hop_count_improves_or_matches_manual() {
    let mut scenario = homogeneous(120, 33);
    scenario.brokers.truncate(20);
    let cfg = cfg(33);
    let ctx = ReconfigContext::new();
    let manual = run_approach(&scenario, Approach::Manual, &cfg, &ctx);
    let cram = run_approach(&scenario, Approach::Cram(ClosenessMetric::Iou), &cfg, &ctx);
    assert!(
        cram.metrics.mean_hops <= manual.metrics.mean_hops + 0.2,
        "cram hops {} vs manual {}",
        cram.metrics.mean_hops,
        manual.metrics.mean_hops
    );
    assert!(cram.allocated_brokers < manual.allocated_brokers);
}
