//! Cancellation of a hierarchical zoned run (DESIGN.md §9.3): a token
//! tripped mid-run stops within one wave, checkpoints the completed
//! zone prefix, and resuming from that checkpoint reproduces the
//! uninterrupted allocation bit for bit.

use greenps::core::model::{
    AllocError, AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry, Unit,
};
use greenps::core::pipeline::{CancelToken, PipelineError, ReconfigContext};
use greenps::core::zones::{
    zoned_allocate, zoned_allocate_resumable, InputZoneFeed, StreamingGifBuilder, ZoneFeed,
    ZonePlan, ZonedAllocatePhase, ZonedConfig, ZonedRun,
};
use greenps::profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps::pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps::pubsub::Filter;
use greenps::telemetry::Registry;

const ZONES: usize = 4;
const SUBS_PER_ZONE: usize = 6;

fn input() -> AllocationInput {
    let publishers: PublisherTable = (1..=3)
        .map(|a| PublisherProfile::new(AdvId::new(a), 30.0, 30_000.0, MsgId::new(127)))
        .collect();
    let subscriptions = (0..(ZONES * SUBS_PER_ZONE) as u64)
        .map(|i| {
            let mut p = SubscriptionProfile::with_capacity(128);
            for m in 0..32 {
                p.record(AdvId::new(i % 3 + 1), MsgId::new((i * 7 + m) % 128));
            }
            SubscriptionEntry::new(SubId::new(i), Filter::new(), p)
        })
        .collect();
    AllocationInput {
        brokers: (0..8u64)
            .map(|i| {
                BrokerSpec::new(
                    BrokerId::new(i),
                    format!("b{i}"),
                    LinearFn::new(0.0005, 0.0),
                    120_000.0,
                )
            })
            .collect(),
        subscriptions,
        publishers,
    }
}

/// A feed over fixed index slices that can trip a cancel token right
/// after materializing a chosen zone, and records which zones it was
/// asked for — the observable for "completed zones are never re-fed".
struct TrippingFeed<'a> {
    input: &'a AllocationInput,
    token: CancelToken,
    trip_after_zone: Option<usize>,
    fed: Vec<usize>,
}

impl<'a> TrippingFeed<'a> {
    fn new(input: &'a AllocationInput, token: CancelToken, trip_after_zone: Option<usize>) -> Self {
        Self {
            input,
            token,
            trip_after_zone,
            fed: Vec::new(),
        }
    }
}

impl ZoneFeed for TrippingFeed<'_> {
    fn zone_count(&self) -> usize {
        ZONES
    }

    fn feed(
        &mut self,
        zone: usize,
        builder: &mut StreamingGifBuilder,
        cancel: &CancelToken,
    ) -> Result<(), AllocError> {
        if cancel.is_cancelled_hot() {
            return Err(AllocError::Cancelled);
        }
        self.fed.push(zone);
        for i in zone * SUBS_PER_ZONE..(zone + 1) * SUBS_PER_ZONE {
            builder.push(Unit::from_subscription(
                &self.input.subscriptions[i],
                &self.input.publishers,
            ));
        }
        if self.trip_after_zone == Some(zone) {
            self.token.cancel();
        }
        Ok(())
    }
}

fn config() -> ZonedConfig {
    // One zone per wave: the tightest stop-latency contract.
    ZonedConfig::with_metric(ClosenessMetric::Intersect)
}

#[test]
fn mid_wave_cancel_stops_within_one_wave_and_resumes_bit_identically() {
    let input = input();
    let cfg = config();

    // Uninterrupted reference run over the same zone slices.
    let mut feed = TrippingFeed::new(&input, CancelToken::never(), None);
    let reference = zoned_allocate(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
    )
    .expect("reference run is feasible");
    assert_eq!(feed.fed, vec![0, 1, 2, 3]);

    // Cancelled run: the token trips right after zone 1's pool is
    // materialized, while its CRAM run is still in flight.
    let registry = Registry::new();
    let token = CancelToken::new();
    let mut feed = TrippingFeed::new(&input, token.clone(), Some(1));
    let run = zoned_allocate_resumable(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &registry,
        &token,
        None,
    )
    .expect("cancellation is an outcome, not an error");
    let checkpoint = match run {
        ZonedRun::Cancelled(cp) => cp,
        ZonedRun::Complete(_) => panic!("tripped token must not complete"),
    };
    // Bounded stop latency: at most the in-flight wave is discarded —
    // every zone before the trip is checkpointed, and no zone after
    // the in-flight wave was even fed.
    assert!(
        checkpoint.done.len() + 1 >= feed.fed.len(),
        "lost more than the in-flight wave: done {:?}, fed {:?}",
        checkpoint.done.len(),
        feed.fed
    );
    assert_eq!(feed.fed, vec![0, 1], "zones past the trip never start");
    let done: Vec<u32> = checkpoint.done.iter().map(|z| z.zone).collect();
    assert_eq!(done, (0..checkpoint.done.len() as u32).collect::<Vec<_>>());
    assert_eq!(
        registry.counter("pipeline.cancel.observed").get(),
        1,
        "one cancellation observed"
    );

    // Resume from the checkpoint with a fresh token: the completed
    // prefix is never re-fed, and the outcome is bit-identical to the
    // uninterrupted run — allocation, stats, zones, and link counts.
    let resumed_from = checkpoint.done.len();
    let mut feed = TrippingFeed::new(&input, CancelToken::never(), None);
    let run = zoned_allocate_resumable(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
        &CancelToken::never(),
        Some(checkpoint),
    )
    .expect("resumed run is feasible");
    let resumed = match run {
        ZonedRun::Complete(allocation) => allocation,
        ZonedRun::Cancelled(_) => panic!("never-token cannot cancel"),
    };
    assert_eq!(
        feed.fed,
        (resumed_from..ZONES).collect::<Vec<_>>(),
        "checkpointed zones are skipped on resume"
    );
    assert_eq!(resumed, reference, "resume is bit-identical");
}

#[test]
fn cancelled_phase_reports_cancelled_and_stashes_no_partial_before_work() {
    let input = input();
    let ctx = ReconfigContext::new();
    let mut phase = ZonedAllocatePhase {
        input: &input,
        plan: ZonePlan::PublisherAffinity { zones: 2, seed: 3 },
        config: config(),
        resume: None,
        partial: None,
    };
    ctx.cancel();
    let err = greenps::core::pipeline::Phase::run(&mut phase, (), &ctx)
        .expect_err("pre-tripped context cannot complete");
    assert!(
        matches!(err, PipelineError::Cancelled { .. }),
        "got: {err:?}"
    );
    // Cancelled while gathering the feed: nothing completed, so there
    // is no checkpoint to stash.
    assert!(phase.partial.is_none());
    // Clearing the flag lets the same phase run to completion.
    ctx.clear_cancel();
    let out = greenps::core::pipeline::Phase::run(&mut phase, (), &ctx).expect("clean run");
    assert!(out.allocation.sub_count() == input.subscriptions.len());
}

#[test]
fn cancel_then_resume_through_the_input_feed_matches_input_run() {
    // Same contract through the production `InputZoneFeed`: cancel the
    // cross pass (every zone done), resume, and match the clean run.
    let input = input();
    let cfg = config();
    let plan = ZonePlan::PublisherAffinity { zones: 3, seed: 11 };
    let mut feed = InputZoneFeed::new(&input, &plan);
    let reference = zoned_allocate(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
    )
    .expect("reference run is feasible");

    // Trip the token after the last zone is fed: the wave completes,
    // and the cancellation lands on the pre-cross poll.
    let token = CancelToken::new();
    let mut feed = TrippingFeed::new(&input, token.clone(), Some(ZONES - 1));
    let run = zoned_allocate_resumable(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
        &token,
        None,
    )
    .expect("cancellation is an outcome");
    let checkpoint = match run {
        ZonedRun::Cancelled(cp) => cp,
        ZonedRun::Complete(_) => panic!("tripped token must not complete"),
    };
    assert!(!checkpoint.done.is_empty());

    // The checkpoint round-trips losslessly through the artifact JSON
    // used by the pipeline store.
    use greenps::core::pipeline::Artifact;
    let json = checkpoint.to_json();
    let back = greenps::core::zones::ZonedCheckpoint::from_json(&json).expect("round-trip");
    assert_eq!(back, checkpoint);

    // Resume with the production input feed over the same slices: the
    // input-feed reference used a different partition, so compare the
    // resumed run against the slice-feed reference instead.
    let mut feed = TrippingFeed::new(&input, CancelToken::never(), None);
    let slice_reference = zoned_allocate(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
    )
    .expect("slice reference is feasible");
    let mut feed = TrippingFeed::new(&input, CancelToken::never(), None);
    let run = zoned_allocate_resumable(
        &mut feed,
        &input.brokers,
        &input.publishers,
        &cfg,
        &Registry::disabled(),
        &CancelToken::never(),
        Some(back),
    )
    .expect("resumed run is feasible");
    match run {
        ZonedRun::Complete(allocation) => assert_eq!(allocation, slice_reference),
        ZonedRun::Cancelled(_) => panic!("never-token cannot cancel"),
    }
    // And the clean input-feed run is self-consistent.
    assert_eq!(reference.allocation.sub_count(), input.subscriptions.len());
}
