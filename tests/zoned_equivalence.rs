//! Property-based tests on the hierarchical zones subsystem
//! (DESIGN.md §12): a single-zone hierarchical run is the flat CRAM
//! run — bit for bit, for every metric and thread count — and the
//! affinity partitioner is a deterministic total partition.

use greenps::core::cram::CramBuilder;
use greenps::core::model::{AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry};
use greenps::core::pipeline::CancelToken;
use greenps::core::zones::{partition, zoned_allocate, InputZoneFeed, ZonePlan, ZonedConfig};
use greenps::profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps::pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps::pubsub::Filter;
use greenps::telemetry::Registry;
use proptest::prelude::*;

const WINDOW: u64 = 128;

fn arb_profile() -> impl Strategy<Value = SubscriptionProfile> {
    // 1–2 publishers, each with a random subset of the window.
    proptest::collection::vec(
        (
            1u64..=3,
            proptest::collection::btree_set(0u64..WINDOW, 1..64),
        ),
        1..3,
    )
    .prop_map(|vecs| {
        let mut p = SubscriptionProfile::with_capacity(WINDOW as usize);
        for (adv, ids) in vecs {
            for id in ids {
                p.record(AdvId::new(adv), MsgId::new(id));
            }
        }
        p
    })
}

fn arb_input() -> impl Strategy<Value = AllocationInput> {
    (
        proptest::collection::vec(arb_profile(), 1..40),
        2usize..12,
        20_000.0..200_000.0f64,
    )
        .prop_map(|(profiles, brokers, bw)| {
            let publishers: PublisherTable = (1..=3)
                .map(|a| {
                    PublisherProfile::new(AdvId::new(a), 30.0, 30_000.0, MsgId::new(WINDOW - 1))
                })
                .collect();
            AllocationInput {
                brokers: (0..brokers as u64)
                    .map(|i| {
                        BrokerSpec::new(
                            BrokerId::new(i),
                            format!("b{i}"),
                            LinearFn::new(0.0005, 0.0),
                            bw,
                        )
                    })
                    .collect(),
                subscriptions: profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| SubscriptionEntry::new(SubId::new(i as u64), Filter::new(), p))
                    .collect(),
                publishers,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `zones = 1` is the degenerate hierarchy: the per-zone run sees
    /// the full pool and the cross-zone pass is skipped, so the result
    /// must equal a flat `CramBuilder` run bit for bit — allocation
    /// AND stats, for every metric × thread count.
    #[test]
    fn single_zone_run_is_bit_identical_to_flat_cram(input in arb_input()) {
        for metric in ClosenessMetric::ALL {
            for threads in [1usize, 2, 4, 8] {
                let mut config = ZonedConfig::with_metric(metric);
                config.cram.threads = threads;
                let flat = CramBuilder::from_config(config.cram).run(&input);
                let plan = ZonePlan::PublisherAffinity { zones: 1, seed: 7 };
                let mut feed = InputZoneFeed::new(&input, &plan);
                let zoned = zoned_allocate(
                    &mut feed,
                    &input.brokers,
                    &input.publishers,
                    &config,
                    &Registry::disabled(),
                );
                match (flat, zoned) {
                    (Ok((flat_alloc, flat_stats)), Ok(zoned)) => {
                        prop_assert_eq!(&zoned.allocation, &flat_alloc,
                            "{} t={}", metric, threads);
                        prop_assert_eq!(
                            zoned.zones.first().map(|z| z.stats),
                            Some(flat_stats),
                            "{} t={}", metric, threads);
                        prop_assert_eq!(zoned.cross_links, 0);
                        prop_assert!(zoned.cross_stats.is_none());
                    }
                    (Err(_), Err(_)) => {}
                    (flat, zoned) => prop_assert!(false,
                        "flat/zoned disagree on feasibility: {:?} vs {:?}",
                        flat.is_ok(), zoned.is_ok()),
                }
            }
        }
    }

    /// The affinity partitioner is deterministic for a fixed seed and
    /// always produces a total partition in input order.
    #[test]
    fn affinity_partition_is_deterministic_and_total(
        input in arb_input(),
        zones in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let plan = ZonePlan::PublisherAffinity { zones, seed };
        let first = partition(&input, &plan, &CancelToken::never()).unwrap();
        let second = partition(&input, &plan, &CancelToken::never()).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.len(), zones);
        let mut all: Vec<usize> = first.iter().flatten().copied().collect();
        for zone in &first {
            prop_assert!(zone.windows(2).all(|w| w[0] < w[1]), "zone not in input order");
        }
        all.sort_unstable();
        prop_assert_eq!(all, (0..input.subscriptions.len()).collect::<Vec<_>>());
    }
}
