//! Property-based integration tests on the allocation algorithms:
//! capacity feasibility, completeness, and clustering sanity across
//! random workloads.

use greenps::core::cram::{CramBuilder, Layout};
use greenps::core::model::{AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry};
use greenps::core::overlay::{build_overlay, AllocatorKind, OverlayConfig};
use greenps::core::sorting::{bin_packing, fbf};
use greenps::profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps::pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps::pubsub::Filter;
use proptest::prelude::*;

const WINDOW: u64 = 128;

fn arb_profile() -> impl Strategy<Value = SubscriptionProfile> {
    // 1–2 publishers, each with a random subset of the window.
    proptest::collection::vec(
        (
            1u64..=3,
            proptest::collection::btree_set(0u64..WINDOW, 1..64),
        ),
        1..3,
    )
    .prop_map(|vecs| {
        let mut p = SubscriptionProfile::with_capacity(WINDOW as usize);
        for (adv, ids) in vecs {
            for id in ids {
                p.record(AdvId::new(adv), MsgId::new(id));
            }
        }
        p
    })
}

fn arb_input() -> impl Strategy<Value = AllocationInput> {
    (
        proptest::collection::vec(arb_profile(), 1..40),
        2usize..12,
        20_000.0..200_000.0f64,
    )
        .prop_map(|(profiles, brokers, bw)| {
            let publishers: PublisherTable = (1..=3)
                .map(|a| {
                    PublisherProfile::new(AdvId::new(a), 30.0, 30_000.0, MsgId::new(WINDOW - 1))
                })
                .collect();
            AllocationInput {
                brokers: (0..brokers as u64)
                    .map(|i| {
                        BrokerSpec::new(
                            BrokerId::new(i),
                            format!("b{i}"),
                            LinearFn::new(0.0005, 0.0),
                            bw,
                        )
                    })
                    .collect(),
                subscriptions: profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| SubscriptionEntry::new(SubId::new(i as u64), Filter::new(), p))
                    .collect(),
                publishers,
            }
        })
}

fn assert_feasible(input: &AllocationInput, alloc: &greenps::core::Allocation) {
    for load in &alloc.loads {
        let spec = input.brokers.iter().find(|b| b.id == load.broker).unwrap();
        prop_assert_with(load.out_bw_used < spec.out_bandwidth, "bandwidth exceeded");
        let max = spec.matching_delay.max_rate(load.sub_count());
        prop_assert_with(load.in_rate <= max + 1e-9, "matching rate exceeded");
    }
}

fn prop_assert_with(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bin_packing_allocations_are_feasible_and_complete(input in arb_input()) {
        if let Ok(alloc) = bin_packing(&input) {
            assert_eq!(alloc.sub_count(), input.subscriptions.len());
            assert_feasible(&input, &alloc);
        }
    }

    #[test]
    fn fbf_allocations_are_feasible_and_complete(input in arb_input()) {
        if let Ok(alloc) = fbf(&input, 99) {
            assert_eq!(alloc.sub_count(), input.subscriptions.len());
            assert_feasible(&input, &alloc);
        }
    }

    #[test]
    fn bin_packing_never_allocates_more_brokers_than_fbf(input in arb_input()) {
        if let (Ok(bp), Ok(f)) = (bin_packing(&input), fbf(&input, 5)) {
            prop_assert!(bp.broker_count() <= f.broker_count());
        }
    }

    #[test]
    fn cram_allocations_are_feasible_and_never_worse(input in arb_input()) {
        let Ok(bp) = bin_packing(&input) else { return Ok(()); };
        let (alloc, stats) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
        assert_eq!(alloc.sub_count(), input.subscriptions.len());
        assert_feasible(&input, &alloc);
        prop_assert!(alloc.broker_count() <= bp.broker_count(),
            "cram {} > binpacking {}", alloc.broker_count(), bp.broker_count());
        prop_assert!(stats.initial_gifs <= stats.subscriptions);
    }

    #[test]
    fn overlay_is_always_a_tree_covering_all_subscriptions(input in arb_input()) {
        let Ok(alloc) = bin_packing(&input) else { return Ok(()); };
        if alloc.loads.is_empty() { return Ok(()); }
        let overlay = build_overlay(
            &input,
            &alloc,
            &OverlayConfig::new(AllocatorKind::BinPacking),
        ).unwrap();
        overlay.check_tree();
        let homes = overlay.subscription_homes();
        prop_assert_eq!(homes.len(), input.subscriptions.len());
        prop_assert_eq!(overlay.edges().count(), overlay.broker_count() - 1);
    }

    #[test]
    fn xor_metric_also_produces_feasible_allocations(input in arb_input()) {
        if bin_packing(&input).is_err() { return Ok(()); }
        let (alloc, _) = CramBuilder::new(ClosenessMetric::Xor).run(&input).unwrap();
        assert_eq!(alloc.sub_count(), input.subscriptions.len());
        assert_feasible(&input, &alloc);
    }

    /// The parallel closest-pair search is a pure performance knob:
    /// for any thread count, every metric must reproduce the
    /// sequential allocation (and stats) bit for bit.
    #[test]
    fn parallel_cram_is_bit_identical_to_sequential(input in arb_input()) {
        if bin_packing(&input).is_err() { return Ok(()); }
        for metric in ClosenessMetric::ALL {
            let (seq_alloc, seq_stats) =
                CramBuilder::new(metric).run(&input).unwrap();
            for threads in [2usize, 4, 8] {
                let (par_alloc, par_stats) = CramBuilder::new(metric)
                    .threads(threads)
                    .run(&input)
                    .unwrap();
                prop_assert_eq!(&par_alloc, &seq_alloc, "{} t={}", metric, threads);
                prop_assert_eq!(par_stats, seq_stats, "{} t={}", metric, threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The arena layout is a pure memory-layout change: for every
    /// metric, thread count, and tile setting, it must reproduce the
    /// per-profile allocation, stats, and telemetry counters bit for
    /// bit (tiling changes `closeness_computations`, but identically
    /// for both layouts — the counters must still agree).
    #[test]
    fn arena_layout_is_bit_identical_to_per_profile(input in arb_input()) {
        if bin_packing(&input).is_err() { return Ok(()); }
        for metric in ClosenessMetric::ALL {
            for tile in [0usize, 8] {
                for threads in [1usize, 2, 4, 8] {
                    let per_profile = greenps::telemetry::Registry::new();
                    let (pp_alloc, pp_stats) = CramBuilder::new(metric)
                        .layout(Layout::PerProfile)
                        .tile(tile)
                        .threads(threads)
                        .telemetry(&per_profile)
                        .run(&input)
                        .unwrap();
                    let arena = greenps::telemetry::Registry::new();
                    let (ar_alloc, ar_stats) = CramBuilder::new(metric)
                        .layout(Layout::Arena { stride: 0 })
                        .tile(tile)
                        .threads(threads)
                        .telemetry(&arena)
                        .run(&input)
                        .unwrap();
                    prop_assert_eq!(&ar_alloc, &pp_alloc,
                        "{} t={} tile={}", metric, threads, tile);
                    prop_assert_eq!(ar_stats, pp_stats,
                        "{} t={} tile={}", metric, threads, tile);
                    prop_assert_eq!(
                        arena.snapshot().counters, per_profile.snapshot().counters,
                        "{} t={} tile={}", metric, threads, tile);
                }
            }
        }
    }
}
