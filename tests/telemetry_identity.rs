//! Telemetry is an observation plane, not a participant: attaching a
//! live registry to CRAM must never change the allocation or its
//! stats, at any thread count, and the traced run must actually leave
//! evidence behind (closeness counters, pair-cache hit rates).

use greenps::core::cram::CramBuilder;
use greenps::core::model::{AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry};
use greenps::core::sorting::bin_packing;
use greenps::profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps::pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps::pubsub::Filter;
use greenps::telemetry::Registry;
use proptest::prelude::*;

const WINDOW: u64 = 128;

fn arb_profile() -> impl Strategy<Value = SubscriptionProfile> {
    proptest::collection::vec(
        (
            1u64..=3,
            proptest::collection::btree_set(0u64..WINDOW, 1..64),
        ),
        1..3,
    )
    .prop_map(|vecs| {
        let mut p = SubscriptionProfile::with_capacity(WINDOW as usize);
        for (adv, ids) in vecs {
            for id in ids {
                p.record(AdvId::new(adv), MsgId::new(id));
            }
        }
        p
    })
}

fn arb_input() -> impl Strategy<Value = AllocationInput> {
    (
        proptest::collection::vec(arb_profile(), 4..32),
        2usize..10,
        20_000.0..200_000.0f64,
    )
        .prop_map(|(profiles, brokers, bw)| {
            let publishers: PublisherTable = (1..=3)
                .map(|a| {
                    PublisherProfile::new(AdvId::new(a), 30.0, 30_000.0, MsgId::new(WINDOW - 1))
                })
                .collect();
            AllocationInput {
                brokers: (0..brokers as u64)
                    .map(|i| {
                        BrokerSpec::new(
                            BrokerId::new(i),
                            format!("b{i}"),
                            LinearFn::new(0.0005, 0.0),
                            bw,
                        )
                    })
                    .collect(),
                subscriptions: profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| SubscriptionEntry::new(SubId::new(i as u64), Filter::new(), p))
                    .collect(),
                publishers,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A live registry must be invisible to the algorithm: same
    /// allocation and same stats as the untraced run, whether the
    /// closest-pair search is sequential or sharded across threads.
    #[test]
    fn traced_cram_is_bit_identical_to_untraced(input in arb_input()) {
        if bin_packing(&input).is_err() { return Ok(()); }
        for metric in [ClosenessMetric::Ios, ClosenessMetric::Xor] {
            let (plain_alloc, plain_stats) =
                CramBuilder::new(metric).run(&input).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let registry = Registry::new();
                let (traced_alloc, traced_stats) = CramBuilder::new(metric)
                    .threads(threads)
                    .telemetry(&registry)
                    .run(&input)
                    .unwrap();
                prop_assert_eq!(&traced_alloc, &plain_alloc, "{} t={}", metric, threads);
                prop_assert_eq!(traced_stats, plain_stats, "{} t={}", metric, threads);
            }
        }
    }

    /// The traced run must leave a meaningful trail: closeness
    /// evaluations counted, the `cram.run` span closed, and (whenever
    /// the cache was consulted at all) hits + misses adding up.
    #[test]
    fn traced_cram_records_its_work(input in arb_input()) {
        if bin_packing(&input).is_err() { return Ok(()); }
        let registry = Registry::new();
        let (_, stats) = CramBuilder::new(ClosenessMetric::Ios)
            .telemetry(&registry)
            .run(&input)
            .unwrap();
        let snap = registry.snapshot();
        let evals = snap
            .counters
            .get("cram.closeness_computations")
            .copied()
            .unwrap_or(0);
        prop_assert_eq!(evals, stats.closeness_computations,
            "counter mirrors CramStats");
        let span = snap.spans.get("cram.run").expect("cram.run span");
        prop_assert!(span.count >= 1);
        let hits = snap.counters.get("core.pair_cache.hits").copied().unwrap_or(0);
        let misses = snap
            .counters
            .get("core.pair_cache.misses")
            .copied()
            .unwrap_or(0);
        if evals > 0 {
            prop_assert!(
                hits + misses > 0,
                "the pair cache must have been consulted: {} evals", evals
            );
        }
        prop_assert!(stats.subscriptions >= 1);
    }
}
