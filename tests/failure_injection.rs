//! Failure injection: broker death partitions the tree (downstream
//! subscribers starve), and Phase-1 gathering degrades gracefully
//! instead of hanging.

use greenps::broker::{Deployment, SubscriberClient};
use greenps::pubsub::ids::ClientId;
use greenps::simnet::SimDuration;
use greenps::telemetry::Registry;
use greenps::workload::{deploy, manual, Scenario, ScenarioBuilder, Topology};

fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(total_subs)
        .seed(seed)
        .build()
}

#[test]
fn broker_death_starves_its_subtree_only() {
    let mut scenario = homogeneous(60, 91);
    scenario.brokers.truncate(8);
    let placement = manual(&scenario, 91);
    let mut d: Deployment = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(10));

    // Kill a mid-tree broker (sorted fan-out-2: broker at position 1).
    let victim = placement.spec.brokers[1].id;
    let victim_node = d.brokers[&victim];
    d.net.kill_node(victim_node);

    // Subscribers homed at the victim stop receiving; others continue.
    let victims: Vec<ClientId> = scenario
        .subs
        .iter()
        .enumerate()
        .filter(|(i, _)| placement.subscriber_homes[*i] == victim)
        .map(|(_, s)| ClientId::new(2_000_000 + s.id.raw()))
        .collect();
    let survivors: Vec<ClientId> = scenario
        .subs
        .iter()
        .enumerate()
        .filter(|(i, _)| placement.subscriber_homes[*i] != victim)
        .map(|(_, s)| ClientId::new(2_000_000 + s.id.raw()))
        .collect();
    assert!(!victims.is_empty() && !survivors.is_empty());

    let count = |d: &Deployment, ids: &[ClientId]| -> u64 {
        ids.iter()
            .map(|c| {
                d.net
                    .node_as::<SubscriberClient>(d.subscribers[c])
                    .unwrap()
                    .deliveries()
            })
            .sum()
    };
    let victims_before = count(&d, &victims);
    d.run_for(SimDuration::from_secs(20));
    let victims_after = count(&d, &victims);
    assert!(
        victims_after <= victims_before + victims.len() as u64,
        "victim subtree keeps receiving: {victims_before} -> {victims_after}"
    );
    // The rest of the tree keeps flowing (publications dropped at the
    // dead node, everything else routed normally) — at least some
    // survivor traffic continues.
    let survivors_mid = count(&d, &survivors);
    d.run_for(SimDuration::from_secs(20));
    let survivors_after = count(&d, &survivors);
    assert!(
        survivors_after > survivors_mid,
        "survivors stalled: {survivors_mid} -> {survivors_after}"
    );
    assert!(
        d.net.dropped() > 0,
        "messages to the dead broker are dropped"
    );
}

#[test]
fn telemetry_records_drops_and_stalls_under_failure() {
    let mut scenario = homogeneous(60, 93);
    scenario.brokers.truncate(8);
    let placement = manual(&scenario, 93);
    let mut d: Deployment = deploy(&scenario, &placement);

    // Attach a live registry and make the stall detector hair-trigger so
    // ordinary queueing at the root broker registers as stall events.
    let registry = Registry::new();
    d.set_telemetry(&registry);
    d.net.set_stall_threshold(SimDuration::from_micros(1));
    d.run_for(SimDuration::from_secs(10));

    // Kill a mid-tree broker: its upstream keeps forwarding for a while
    // and every one of those messages is counted as dropped.
    let victim = placement.spec.brokers[1].id;
    d.net.kill_node(d.brokers[&victim]);
    d.run_for(SimDuration::from_secs(20));

    let snap = registry.snapshot();
    let dropped = snap.counters.get("simnet.dropped").copied().unwrap_or(0);
    assert!(
        dropped > 0,
        "dead broker must produce dropped-message counts"
    );
    assert_eq!(
        dropped,
        d.net.dropped(),
        "telemetry counter mirrors the event loop's own tally"
    );
    let ring = snap.rings.get("simnet").expect("simnet event ring");
    assert!(
        ring.events.iter().any(|e| e.kind == "msg.drop"),
        "drop events recorded in the ring"
    );
    assert!(
        ring.events.iter().any(|e| e.kind == "queue.stall"),
        "stall events recorded with a 1us threshold"
    );
    assert!(
        snap.counters.get("simnet.delivered").copied().unwrap_or(0) > 0,
        "deliveries keep flowing for the surviving subtree"
    );
}

#[test]
fn gather_times_out_gracefully_with_a_dead_branch() {
    let mut scenario = homogeneous(30, 92);
    scenario.brokers.truncate(8);
    let placement = manual(&scenario, 92);
    let mut d: Deployment = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(5));

    // Kill a leaf broker: the BIR flood waits for an answer that never
    // comes; gather must report a timeout, not hang.
    let victim = placement.spec.brokers[7].id;
    d.net.kill_node(d.brokers[&victim]);
    let result = d.gather(SimDuration::from_secs(10));
    assert!(
        matches!(
            result,
            Err(greenps_broker::GatherError::Timeout { waited })
                if waited == SimDuration::from_secs(10)
        ),
        "gather must time out with a dead broker"
    );
}
