//! A scaled-down SciNet run: hundreds of brokers, saturated MANUAL
//! baseline, reconfigured down to a handful of brokers.
//!
//! ```sh
//! cargo run --release --example large_scale_scinet
//! ```
//!
//! The paper's full scales (400 brokers / 72 publishers and 1,000
//! brokers / 100 publishers with 225 subscriptions each) run through
//! `cargo run --release -p greenps-bench --bin experiments -- e5`.

use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::simnet::SimDuration;
use greenps::workload::report::{outcome_table, reduction_pct};
use greenps::workload::runner::{run_approach, Approach, RunConfig};
use greenps::workload::{ScenarioBuilder, Topology};

fn main() {
    // 200 brokers, 36 publishers, 50 subscriptions per publisher.
    let scenario = ScenarioBuilder::new(Topology::Scinet)
        .brokers(200)
        .publishers(36)
        .subs_per_publisher(50)
        .seed(11)
        .build();
    println!(
        "SciNet-style scenario: {} brokers, {} publishers, {} subscriptions",
        scenario.broker_count(),
        scenario.publisher_count(),
        scenario.sub_count()
    );
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(5),
        profile: SimDuration::from_secs(90),
        measure: SimDuration::from_secs(90),
        seed: 11,
    };
    let ctx = ReconfigContext::new();
    let manual = run_approach(&scenario, Approach::Manual, &cfg, &ctx);
    let cram = run_approach(&scenario, Approach::Cram(ClosenessMetric::Ios), &cfg, &ctx);
    print!(
        "{}",
        outcome_table(&[manual.clone(), cram.clone()]).render()
    );
    println!(
        "\nbroker reduction: {:.1}%   message-rate reduction: {:.1}%",
        reduction_pct(
            manual.allocated_brokers as f64,
            cram.allocated_brokers as f64
        ),
        reduction_pct(
            manual.metrics.avg_broker_msg_rate,
            cram.metrics.avg_broker_msg_rate
        )
    );
}
