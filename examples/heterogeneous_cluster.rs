//! The heterogeneous scenario: 15 full / 25 half / 40 quarter capacity
//! brokers and a skewed subscriber distribution, comparing BIN PACKING
//! with CRAM (the paper's §VI heterogeneous experiments).
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::simnet::SimDuration;
use greenps::workload::report::outcome_table;
use greenps::workload::runner::{run_approach, Approach, RunConfig};
use greenps::workload::{ScenarioBuilder, Topology};

fn main() {
    let scenario = ScenarioBuilder::new(Topology::Heterogeneous)
        .ns(50)
        .seed(7)
        .build();
    println!(
        "heterogeneous scenario: {} brokers, {} publishers, {} subscriptions",
        scenario.broker_count(),
        scenario.publisher_count(),
        scenario.sub_count()
    );
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(5),
        profile: SimDuration::from_secs(90),
        measure: SimDuration::from_secs(90),
        seed: 7,
    };
    let ctx = ReconfigContext::new();
    let outcomes: Vec<_> = [
        Approach::Manual,
        Approach::BinPacking,
        Approach::Cram(ClosenessMetric::Ios),
        Approach::Cram(ClosenessMetric::Iou),
    ]
    .into_iter()
    .map(|a| {
        eprintln!("running {}…", a.label());
        run_approach(&scenario, a, &cfg, &ctx)
    })
    .collect();
    print!("{}", outcome_table(&outcomes).render());

    // CRAM should fit the skewed load into the big brokers first.
    let cram = outcomes.last().unwrap();
    println!(
        "\nCRAM-IOU allocated {} of 80 brokers ({} subscriptions preserved)",
        cram.allocated_brokers, cram.subscriptions
    );
}
