//! The paper's full pipeline on a simulated cluster: deploy the MANUAL
//! baseline, profile with bit vectors, gather with BIR/BIA, reconfigure
//! with CRAM, and compare before/after.
//!
//! ```sh
//! cargo run --release --example green_reconfiguration
//! ```

use greenps::core::croc::{plan, PlanConfig};
use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::simnet::SimDuration;
use greenps::workload::report::reduction_pct;
use greenps::workload::runner::{profile_and_gather, RunConfig};
use greenps::workload::{deploy, from_plan, manual, ScenarioBuilder, Topology};

fn main() {
    // A scaled-down homogeneous scenario: 32 brokers, 40 publishers at
    // 70 msg/min, 800 subscriptions.
    let mut scenario = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(800)
        .seed(42)
        .build();
    scenario.brokers.truncate(32);
    let cfg = RunConfig {
        warmup: SimDuration::from_secs(5),
        profile: SimDuration::from_secs(120),
        measure: SimDuration::from_secs(120),
        seed: 42,
    };

    // Baseline: MANUAL fan-out-2 tree.
    println!(
        "deploying MANUAL baseline ({} brokers)…",
        scenario.broker_count()
    );
    let placement = manual(&scenario, cfg.seed);
    let mut baseline = deploy(&scenario, &placement);
    baseline.run_for(cfg.warmup);
    let mut before = baseline.measure(cfg.measure);
    before.rescale_to_pool(scenario.broker_count());

    // Phase 1 (on a fresh deployment), Phases 2–3 + GRAPE.
    println!("profiling and gathering (Phase 1)…");
    let ctx = ReconfigContext::new();
    let (_, input) = profile_and_gather(&scenario, &cfg, &ctx);
    println!(
        "gathered {} brokers, {} subscriptions, {} publishers",
        input.brokers.len(),
        input.subscriptions.len(),
        input.publishers.len()
    );
    let plan = plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &ctx).expect("plan");
    println!(
        "CRAM allocated {} brokers; overlay:\n{}",
        plan.broker_count(),
        plan.overlay
    );

    // Redeploy per the plan and measure again.
    let placement = from_plan(&scenario, &plan);
    let mut after_d = deploy(&scenario, &placement);
    after_d.run_for(cfg.warmup);
    let mut after = after_d.measure(cfg.measure);
    after.rescale_to_pool(scenario.broker_count());

    println!("\n                      before      after");
    println!(
        "brokers            {:>9}  {:>9}",
        scenario.broker_count(),
        plan.broker_count()
    );
    println!(
        "avg msg rate       {:>9.2}  {:>9.2}  ({:.1}% reduction)",
        before.avg_broker_msg_rate,
        after.avg_broker_msg_rate,
        reduction_pct(before.avg_broker_msg_rate, after.avg_broker_msg_rate)
    );
    println!(
        "mean hops          {:>9.2}  {:>9.2}",
        before.mean_hops, after.mean_hops
    );
    println!(
        "mean delay (ms)    {:>9.2}  {:>9.2}",
        before.mean_delay_s * 1e3,
        after.mean_delay_s * 1e3
    );
    println!(
        "deliveries         {:>9}  {:>9}",
        before.deliveries, after.deliveries
    );
}
