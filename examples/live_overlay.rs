//! Execute a CROC plan on the live threaded runtime: plan against ideal
//! profiles, spawn one OS thread per allocated broker, wire the overlay
//! edges, and stream real publications through it.
//!
//! ```sh
//! cargo run --release --example live_overlay
//! ```

use greenps::broker::live::LiveNet;
use greenps::core::croc::{plan, PlanConfig};
use greenps::core::pipeline::ReconfigContext;
use greenps::profile::ClosenessMetric;
use greenps::pubsub::filter::stock_advertisement;
use greenps::pubsub::ids::{AdvId, MsgId};
use greenps::pubsub::message::{Advertisement, Subscription};
use greenps_bench::ideal_input;
use greenps_workload::{ScenarioBuilder, Topology};
use std::time::Duration;

fn main() {
    // Plan offline from ideal profiles.
    let mut scenario = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(300)
        .seed(3)
        .build();
    scenario.brokers.truncate(24);
    let input = ideal_input(&scenario);
    let ctx = ReconfigContext::new();
    let plan = plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &ctx).expect("plan");
    println!(
        "plan: {} brokers (of {}), root {}",
        plan.broker_count(),
        scenario.broker_count(),
        plan.overlay.root()
    );

    // Spawn the overlay live.
    let brokers: Vec<_> = plan.overlay.nodes().map(|n| n.broker).collect();
    let edges: Vec<_> = plan.overlay.edges().collect();
    let mut net = LiveNet::start(&brokers, &edges, &ctx).expect("start live net");
    std::thread::sleep(Duration::from_millis(50));

    // Publishers at their GRAPE homes; subscribers at their allocated
    // brokers (we attach the first 50 subscriptions for the demo).
    let mut publishers = Vec::new();
    for (i, stock) in scenario.stocks.iter().enumerate() {
        let adv = AdvId::new(i as u64 + 1);
        let home = plan
            .publisher_homes
            .get(&adv)
            .copied()
            .unwrap_or(plan.overlay.root());
        publishers.push((
            net.publisher(
                home,
                Advertisement::new(adv, stock_advertisement(&stock.symbol)),
            )
            .expect("attach publisher"),
            stock.clone(),
        ));
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut inboxes = Vec::new();
    for sub in scenario.subs.iter().take(50) {
        let home = plan.subscription_homes[&sub.id];
        inboxes.push(
            net.subscriber(home, Subscription::new(sub.id, sub.filter.clone()))
                .expect("attach subscriber"),
        );
    }
    std::thread::sleep(Duration::from_millis(100));

    // Publish a burst of quotes from every publisher.
    for m in 0..20u64 {
        for (p, stock) in &publishers {
            p.publish(stock.publication(p.adv_id, MsgId::new(m)));
        }
    }
    std::thread::sleep(Duration::from_millis(300));

    let mut delivered = 0usize;
    for inbox in &inboxes {
        while inbox.try_recv().is_ok() {
            delivered += 1;
        }
    }
    let stats = net.shutdown().expect("clean shutdown");
    let forwarded: u64 = stats.values().map(|s| s.msgs_out).sum();
    println!(
        "delivered {delivered} publications to 50 live subscribers \
         ({forwarded} broker messages across {} threads)",
        stats.len()
    );
    assert!(delivered > 0, "live overlay must deliver");
}
