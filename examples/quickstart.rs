//! Quickstart: allocate subscriptions onto a minimal set of brokers and
//! build the overlay tree, all from hand-made profiles.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use greenps::core::croc::{plan, PlanConfig};
use greenps::core::model::{AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry};
use greenps::core::pipeline::ReconfigContext;
use greenps::profile::{ClosenessMetric, PublisherProfile, SubscriptionProfile};
use greenps::pubsub::filter::stock_template;
use greenps::pubsub::ids::{AdvId, BrokerId, MsgId, SubId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut input = AllocationInput::new();

    // A pool of ten brokers, each with 100 kB/s of output bandwidth and
    // a linear matching-delay model.
    for i in 0..10u64 {
        input.brokers.push(BrokerSpec::new(
            BrokerId::new(i),
            format!("tcp://broker-{i}:1099"),
            LinearFn::new(0.0002, 5e-8),
            100_000.0,
        ));
    }

    // Two publishers: YHOO at 50 msg/s, GOOG at 25 msg/s.
    input.publishers.insert(PublisherProfile::new(
        AdvId::new(1),
        50.0,
        50_000.0,
        MsgId::new(199),
    ));
    input.publishers.insert(PublisherProfile::new(
        AdvId::new(2),
        25.0,
        25_000.0,
        MsgId::new(199),
    ));

    // Forty subscriptions; even ids follow YHOO, odd ids follow GOOG.
    // Each bit-vector profile records which of the last 200 publications
    // the subscription sank — here a simple selectivity ramp.
    for i in 0..40u64 {
        let adv = AdvId::new(1 + i % 2);
        let symbol = if i % 2 == 0 { "YHOO" } else { "GOOG" };
        let mut profile = SubscriptionProfile::new();
        let every = 1 + (i / 2) % 4; // sink every 1st..4th publication
        for m in (0..200u64).step_by(every as usize) {
            profile.record(adv, MsgId::new(m));
        }
        input.subscriptions.push(SubscriptionEntry::new(
            SubId::new(i),
            stock_template(symbol),
            profile,
        ));
    }

    // Phases 2 + 3 + GRAPE with CRAM and the IOS closeness metric.
    let plan = plan(
        &input,
        &PlanConfig::cram(ClosenessMetric::Ios),
        &ReconfigContext::new(),
    )?;

    println!(
        "allocated {} of {} brokers for {} subscriptions",
        plan.broker_count(),
        input.brokers.len(),
        input.subscriptions.len()
    );
    if let Some(stats) = &plan.cram_stats {
        println!(
            "CRAM: {} GIFs from {} subscriptions, {} merges, {} closeness computations",
            stats.initial_gifs, stats.subscriptions, stats.merges, stats.closeness_computations
        );
    }
    println!("\noverlay tree (root first):\n{}", plan.overlay);
    for (adv, broker) in &plan.publisher_homes {
        println!("publisher {adv} connects to {broker}");
    }
    Ok(())
}
