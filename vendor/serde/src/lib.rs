//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! decoration but never serializes through serde data formats (report
//! CSVs are written by hand), so this stub reduces the traits to
//! markers and the derives to empty impls. When real serialization is
//! needed, swap this vendor crate for upstream serde — call sites will
//! not change.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized (stub: no methods).
pub trait Serialize {}

/// Marker for types that can be deserialized (stub: no methods).
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing (stub).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_marker {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_marker!(
    (),
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for std::sync::Arc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {}
impl<T: Serialize> Serialize for std::rc::Rc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl Serialize for &str {}
