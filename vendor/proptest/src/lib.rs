//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map`, range / tuple / sample /
//! collection strategies, the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, and `prop_oneof!` macros, and a deterministic
//! per-test RNG. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports its inputs via `Debug`
//!   but is not minimized.
//! - **No `.proptest-regressions` replay.** Seeds are derived from the
//!   test name, so runs are reproducible across invocations but the
//!   recorded upstream seeds are not consulted.
//!
//! Swap this vendor crate for upstream proptest to restore both; call
//! sites will not change.

#![forbid(unsafe_code)]

/// Deterministic RNG and test-case plumbing.
pub mod test_runner {
    use std::fmt;

    /// Deterministic generator (splitmix64) seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the test function name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then mix so short names diverge.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift rejection-free mapping; bias is negligible
            // for the small bounds property tests use.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion in the test body failed.
        Fail(String),
        /// The case asked to be discarded (unused by the stub's macros
        /// but kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Result type produced by a single generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration. Only `cases` is honored by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree and no
    /// shrinking: `generate` produces a value directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width range: any value works.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Types with a canonical "generate anything" strategy (`any`).
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Generates any value of type `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Strategies that pick from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding a uniformly chosen clone from a vector.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Chooses uniformly from `items`; the vector must be non-empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs a non-empty vec");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.items.len() as u64) as usize;
            self.items[idx].clone()
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose size falls in `size` (best effort when the
    /// element space is too small to reach the minimum).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = target.saturating_mul(16) + 64;
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property-test functions; each runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal: expands one test fn at a time. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at generated case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Fails the current generated case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current generated case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current generated case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("sizes");
        for _ in 0..50 {
            let v = crate::collection::vec(0u64..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::btree_set(0u64..1000, 1..8).generate(&mut rng);
            assert!((1..8).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let mut rng = TestRng::deterministic("arms");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);

        let sel = crate::sample::select(vec!["a", "b"]);
        let mut seen2 = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen2.insert(sel.generate(&mut rng));
        }
        assert_eq!(seen2.len(), 2);
    }

    // The macro itself, end to end: tuple patterns, multiple bindings,
    // trailing comma, and a config override.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_asserts(
            (a, b) in (0u64..50, 0u64..50),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
            if flag {
                prop_assert_ne!(a + 1, a);
            }
        }
    }
}
