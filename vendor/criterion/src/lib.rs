//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset used by `crates/bench`: each benchmark
//! closure is run for a small, fixed number of timed iterations and a
//! mean wall-clock time is printed. There is no statistical analysis,
//! warm-up calibration, or HTML report — the goal is that `cargo bench`
//! compiles, runs every benchmark body, and emits comparable numbers,
//! entirely without network access. Swap this vendor crate for upstream
//! criterion to get real measurements; call sites will not change.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark, e.g. `fbf/100`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Builds `<function>/<parameter>`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / iters as u32
    };
    println!("bench {label:<48} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// Entry point passed to every `criterion_group!` function.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.to_string(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.iters, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls >= 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut seen = Vec::new();
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
            seen.push(x);
        });
        g.finish();
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fbf", 100).to_string(), "fbf/100");
        assert_eq!(BenchmarkId::from_parameter("island").to_string(), "island");
    }
}
