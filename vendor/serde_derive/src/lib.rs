//! Offline stand-in for `serde_derive`.
//!
//! Emits empty impls of the stub `serde::Serialize` /
//! `serde::Deserialize` marker traits. Handles plain structs/enums and
//! simple generic parameter lists; `#[serde(...)]` attributes are
//! accepted and ignored.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item: its name plus generic pieces.
struct Item {
    name: String,
    /// Full generic parameter list with bounds, e.g. `K: Ord, V`.
    impl_generics: String,
    /// Parameter names only, e.g. `K, V`.
    ty_generics: String,
}

fn parse_item(input: TokenStream) -> Option<Item> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility until `struct`/`enum`/`union`.
    loop {
        match iter.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    iter.next();
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
                // `pub`, `pub(crate)` group is consumed on its own.
            }
            _ => {}
        }
    }
    let name = match iter.next()? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };

    // Optional generic parameter list.
    let mut impl_generics = String::new();
    let mut ty_generics = String::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut tokens: Vec<TokenTree> = Vec::new();
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            tokens.push(tt);
        }
        impl_generics = tokens
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        ty_generics = type_parameter_names(&tokens).join(", ");
    }
    Some(Item {
        name,
        impl_generics,
        ty_generics,
    })
}

/// Extracts just the parameter names (lifetimes, types, consts) from a
/// generic parameter token list.
fn type_parameter_names(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => at_param_start = true,
                '\'' if depth == 0 && at_param_start => {
                    if let Some(TokenTree::Ident(id)) = tokens.get(i + 1) {
                        names.push(format!("'{id}"));
                        at_param_start = false;
                        i += 1;
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    // `const N: usize` — the next ident is the name.
                    if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                        names.push(n.to_string());
                        i += 1;
                    }
                } else {
                    names.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        i += 1;
    }
    names
}

fn empty_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let Some(item) = parse_item(input) else {
        return TokenStream::new();
    };
    let mut impl_params = String::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push_str(lt);
    }
    if !item.impl_generics.is_empty() {
        if !impl_params.is_empty() {
            impl_params.push_str(", ");
        }
        impl_params.push_str(&item.impl_generics);
    }
    let for_ty = if item.ty_generics.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, item.ty_generics)
    };
    let code = if impl_params.is_empty() {
        format!("impl {trait_path} for {for_ty} {{}}")
    } else {
        format!("impl<{impl_params}> {trait_path} for {for_ty} {{}}")
    };
    code.parse().unwrap_or_default()
}

/// Derives the stub `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize", None)
}

/// Derives the stub `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}

// Silence an unused warning for Delimiter, kept for future use in
// attribute filtering.
#[allow(dead_code)]
fn _unused(d: Delimiter) -> Delimiter {
    d
}
