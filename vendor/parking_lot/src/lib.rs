//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot 0.12`'s
//! non-poisoning API surface: [`Mutex`], [`RwLock`], [`Condvar`] with
//! guards that implement `Deref`/`DerefMut`. Poisoning is swallowed
//! (`into_inner` on a poisoned lock), matching parking_lot's semantics
//! of never poisoning.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can
/// move it out and back without unsafe; it is `None` only while parked
/// inside a condvar wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn inner(&self) -> &sync::MutexGuard<'a, T> {
        self.0.as_ref().expect("guard parked in condvar wait")
    }

    fn inner_mut(&mut self) -> &mut sync::MutexGuard<'a, T> {
        self.0.as_mut().expect("guard parked in condvar wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard parked in condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses; returns `true` on
    /// timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard parked in condvar wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t.timed_out())
            }
        };
        guard.0 = Some(inner);
        res
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Arc::new(Mutex::new(0));
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        h.join().expect("signaller");
    }

    #[test]
    fn cross_thread() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*m.lock(), 4000);
    }
}
