//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a deterministic, dependency-free subset of the `rand 0.8` API — just
//! what the workspace uses: [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64. Streams are
//! deterministic per seed but differ from upstream `rand`'s `StdRng`
//! (ChaCha12); the workspace only relies on per-seed determinism, never
//! on specific stream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seeds the generator from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The minimal core RNG interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Modulo bias is negligible for the workspace's small spans
                // and irrelevant for reproducibility purposes.
                let off = rng.next_u64() % span;
                ((low as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sample range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty sample range");
                if high < <$t>::MAX {
                    <$t>::sample_half_open(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_half_open(rng, low - 1, high) + 1
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value generation for [`Rng::gen`].
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// A uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = (s[0].wrapping_add(s[3])).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..10).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..10).map(|_| c.gen_range(0..1000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
