//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`] — an MPMC unbounded channel with cloneable
//! senders *and* receivers, matching the `crossbeam-channel 0.5` API
//! subset the workspace uses (`unbounded`, `send`, `recv`,
//! `recv_timeout`, `try_recv`, iteration). Built on a
//! `Mutex<VecDeque>` + `Condvar`; throughput is adequate for the live
//! broker runtime's message volumes.
//!
//! Also provides [`thread`] — scoped threads for borrowing from the
//! caller's stack, the API subset the parallel closeness engine's
//! worker pool uses. Backed by `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads: workers that may borrow non-`'static` data from the
/// spawning stack frame. A thin wrapper over `std::thread::scope` with
/// the `crossbeam-utils 0.8` flavour of the API (minus the scope
/// argument in spawn closures, which the workspace does not use).
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle; spawn workers through it. All workers are joined
    /// before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result. A worker panic
        /// is resumed on the joining thread, so callers never observe a
        /// poisoned or partial result.
        pub fn join(self) -> T {
            match self.inner.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; returns the
    /// closure's result after every spawned worker has been joined.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        stdthread::scope(|s| f(&Scope { inner: s }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn workers_borrow_and_results_join() {
            let data = [1u64, 2, 3, 4, 5, 6];
            let total: u64 = scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join()).sum()
            });
            assert_eq!(total, 21);
        }

        #[test]
        fn worker_panic_propagates() {
            let caught = std::panic::catch_unwind(|| {
                scope(|s| {
                    s.spawn(|| panic!("worker failed")).join();
                })
            });
            assert!(caught.is_err());
        }
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn state(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of a channel. Clone freely; the channel disconnects
    /// when every sender is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Clone freely; messages go to
    /// whichever receiver takes them first.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.buf.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.state().buf.len()
        }

        /// True when no messages are waiting.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state();
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a message arrives, the channel disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, res) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                if res.timed_out() && st.buf.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state();
            match st.buf.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.state().buf.len()
        }

        /// True when no messages are waiting.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state().receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).expect("send");
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().expect("recv")).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).expect("send");
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(30)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(25));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).expect("send");
                }
            });
            let mut sum = 0;
            for v in rx.iter() {
                sum += v;
            }
            h.join().expect("producer");
            assert_eq!(sum, 4950);
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).expect("send");
            tx.send(2).expect("send");
            let a = rx1.recv().expect("recv");
            let b = rx2.recv().expect("recv");
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
